type status =
  | Done
  | Failed of string
  | Timeout of float
  | Faulted of string

type result = {
  job_name : string;
  digest : string;
  options : string;
  engine : string;  (* canonical Job.engine_string rendering *)
  engine_effective : string;
      (* the engine that actually executed: differs from [engine] only
         when `native` degraded to `fast` (no toolchain, build failure,
         fault-injection policy).  "" for rows that never ran a machine
         (front-end failures); rendered as [engine] in that case. *)
  seed : int;
  tuned : bool;
      (* ran under an auto-tuned layout; emitted only when true so
         untuned rows render byte-identically to earlier versions *)
  status : status;
  simulated_seconds : float;
  metrics : (string * float) list;
      (* deterministic machine counters (Cm.Cost.metrics); part of the
         canonical content, unlike wall_seconds *)
  output : string list;
  wall_seconds : float;
  from_cache : bool;
  attempts : int;
  fault_trace : string list;
}

let status_fields = function
  | Done -> [ ("status", Jsonu.Str "ok") ]
  | Failed msg -> [ ("status", Jsonu.Str "failed"); ("error", Jsonu.Str msg) ]
  | Timeout limit ->
      [ ("status", Jsonu.Str "timeout"); ("deadline", Jsonu.Float limit) ]
  | Faulted msg ->
      [ ("status", Jsonu.Str "faulted"); ("error", Jsonu.Str msg) ]

let canonical_obj r =
  [
    ("job", Jsonu.Str r.job_name);
    ("digest", Jsonu.Str r.digest);
    ("options", Jsonu.Str r.options);
    ("engine", Jsonu.Str r.engine);
    ( "engine_effective",
      Jsonu.Str (if r.engine_effective = "" then r.engine else r.engine_effective)
    );
    ("seed", Jsonu.Int r.seed);
  ]
  @ (if r.tuned then [ ("tuned", Jsonu.Bool true) ] else [])
  @ status_fields r.status
  @ [ ("simulated_seconds", Jsonu.Float r.simulated_seconds) ]
  @ (if r.metrics = [] then []
     else
       [
         ( "metrics",
           Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Float v)) r.metrics) );
       ])
  @ [
      ("output", Jsonu.List (List.map (fun l -> Jsonu.Str l) r.output));
      ("attempts", Jsonu.Int r.attempts);
    ]
  @
  if r.fault_trace = [] then []
  else
    [
      ( "fault_trace",
        Jsonu.List (List.map (fun l -> Jsonu.Str l) r.fault_trace) );
    ]

let canonical_json r = Jsonu.to_string (Jsonu.Obj (canonical_obj r))

let to_json r =
  Jsonu.Obj
    (canonical_obj r
    @ [
        ("wall_seconds", Jsonu.Float r.wall_seconds);
        ("cache", Jsonu.Str (if r.from_cache then "hit" else "miss"));
      ])

let json_line r = Jsonu.to_string (to_json r)

(* Inverse of [to_json], for the wire: a served report row re-renders
   byte-identically on the client side ([canonical_json] included), so
   `ucc submit` can prove its rows equal `ucc batch`'s. *)
let of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  match j with
  | Jsonu.Obj kvs ->
      let str k =
        match List.assoc_opt k kvs with
        | Some (Jsonu.Str s) -> Ok s
        | _ -> Error (Printf.sprintf "report row: missing %S" k)
      in
      let num k =
        match List.assoc_opt k kvs with
        | Some (Jsonu.Float f) -> Ok f
        | Some (Jsonu.Int i) -> Ok (float_of_int i)
        | _ -> Error (Printf.sprintf "report row: missing %S" k)
      in
      let int k =
        match List.assoc_opt k kvs with
        | Some (Jsonu.Int i) -> Ok i
        | _ -> Error (Printf.sprintf "report row: missing %S" k)
      in
      let str_list k =
        match List.assoc_opt k kvs with
        | None -> Ok []
        | Some (Jsonu.List xs) ->
            List.fold_left
              (fun acc x ->
                let* acc = acc in
                match x with
                | Jsonu.Str s -> Ok (s :: acc)
                | _ -> Error (Printf.sprintf "report row: %S not strings" k))
              (Ok []) xs
            |> Result.map List.rev
        | Some _ -> Error (Printf.sprintf "report row: %S not a list" k)
      in
      let* job_name = str "job" in
      let* digest = str "digest" in
      let* options = str "options" in
      let* engine = str "engine" in
      (* absent only in pre-v5 rows: the engine then executed as named *)
      let engine_effective =
        match List.assoc_opt "engine_effective" kvs with
        | Some (Jsonu.Str s) -> s
        | _ -> engine
      in
      let* seed = int "seed" in
      (* absent in untuned and pre-v6 rows *)
      let tuned =
        match List.assoc_opt "tuned" kvs with
        | Some (Jsonu.Bool b) -> b
        | _ -> false
      in
      let* status =
        let* s = str "status" in
        match s with
        | "ok" -> Ok Done
        | "failed" ->
            let* e = str "error" in
            Ok (Failed e)
        | "timeout" ->
            let* d = num "deadline" in
            Ok (Timeout d)
        | "faulted" ->
            let* e = str "error" in
            Ok (Faulted e)
        | s -> Error ("report row: unknown status " ^ s)
      in
      let* simulated_seconds = num "simulated_seconds" in
      let* metrics =
        match List.assoc_opt "metrics" kvs with
        | None -> Ok []
        | Some (Jsonu.Obj ms) ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match v with
                | Jsonu.Float f -> Ok ((k, f) :: acc)
                | Jsonu.Int i -> Ok ((k, float_of_int i) :: acc)
                | _ -> Error "report row: non-numeric metric")
              (Ok []) ms
            |> Result.map List.rev
        | Some _ -> Error "report row: metrics not an object"
      in
      let* output = str_list "output" in
      let* attempts = int "attempts" in
      let* fault_trace = str_list "fault_trace" in
      let* wall_seconds = num "wall_seconds" in
      let* from_cache =
        let* c = str "cache" in
        match c with
        | "hit" -> Ok true
        | "miss" -> Ok false
        | c -> Error ("report row: bad cache tag " ^ c)
      in
      Ok
        {
          job_name;
          digest;
          options;
          engine;
          engine_effective;
          seed;
          tuned;
          status;
          simulated_seconds;
          metrics;
          output;
          wall_seconds;
          from_cache;
          attempts;
          fault_trace;
        }
  | _ -> Error "report row: not an object"

type summary = {
  total : int;
  ok : int;
  failed : int;
  timeout : int;
  faulted : int;
  cache_hits : int;
  simulated_total : float;
  wall_total : float;
  elapsed : float;
}

let summarize ~elapsed results =
  List.fold_left
    (fun s r ->
      {
        s with
        total = s.total + 1;
        ok = (s.ok + match r.status with Done -> 1 | _ -> 0);
        failed = (s.failed + match r.status with Failed _ -> 1 | _ -> 0);
        timeout = (s.timeout + match r.status with Timeout _ -> 1 | _ -> 0);
        faulted = (s.faulted + match r.status with Faulted _ -> 1 | _ -> 0);
        cache_hits = (s.cache_hits + if r.from_cache then 1 else 0);
        simulated_total = s.simulated_total +. r.simulated_seconds;
        wall_total = s.wall_total +. r.wall_seconds;
      })
    {
      total = 0;
      ok = 0;
      failed = 0;
      timeout = 0;
      faulted = 0;
      cache_hits = 0;
      simulated_total = 0.;
      wall_total = 0.;
      elapsed;
    }
    results

let json_of_summary s =
  Jsonu.to_string
    (Jsonu.Obj
       [
         ("summary", Jsonu.Bool true);
         ("total", Jsonu.Int s.total);
         ("ok", Jsonu.Int s.ok);
         ("failed", Jsonu.Int s.failed);
         ("timeout", Jsonu.Int s.timeout);
         ("faulted", Jsonu.Int s.faulted);
         ("cache_hits", Jsonu.Int s.cache_hits);
         ("simulated_seconds", Jsonu.Float s.simulated_total);
         ("job_wall_seconds", Jsonu.Float s.wall_total);
         ("elapsed_seconds", Jsonu.Float s.elapsed);
         ( "jobs_per_second",
           Jsonu.Float
             (if s.elapsed > 0. then float_of_int s.total /. s.elapsed else 0.)
         );
       ])

let pp_summary ppf s =
  Format.fprintf ppf
    "%d jobs: %d ok, %d failed, %d timeout, %d faulted; %d cache hit%s; %.3f \
     simulated s; %.3f s elapsed (%.1f jobs/s)"
    s.total s.ok s.failed s.timeout s.faulted s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.simulated_total s.elapsed
    (if s.elapsed > 0. then float_of_int s.total /. s.elapsed else 0.)
