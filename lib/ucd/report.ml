type status =
  | Done
  | Failed of string
  | Timeout of float
  | Faulted of string

type result = {
  job_name : string;
  digest : string;
  options : string;
  seed : int;
  status : status;
  simulated_seconds : float;
  metrics : (string * float) list;
      (* deterministic machine counters (Cm.Cost.metrics); part of the
         canonical content, unlike wall_seconds *)
  output : string list;
  wall_seconds : float;
  from_cache : bool;
  attempts : int;
  fault_trace : string list;
}

let status_fields = function
  | Done -> [ ("status", Jsonu.Str "ok") ]
  | Failed msg -> [ ("status", Jsonu.Str "failed"); ("error", Jsonu.Str msg) ]
  | Timeout limit ->
      [ ("status", Jsonu.Str "timeout"); ("deadline", Jsonu.Float limit) ]
  | Faulted msg ->
      [ ("status", Jsonu.Str "faulted"); ("error", Jsonu.Str msg) ]

let canonical_obj r =
  [
    ("job", Jsonu.Str r.job_name);
    ("digest", Jsonu.Str r.digest);
    ("options", Jsonu.Str r.options);
    ("seed", Jsonu.Int r.seed);
  ]
  @ status_fields r.status
  @ [ ("simulated_seconds", Jsonu.Float r.simulated_seconds) ]
  @ (if r.metrics = [] then []
     else
       [
         ( "metrics",
           Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Float v)) r.metrics) );
       ])
  @ [
      ("output", Jsonu.List (List.map (fun l -> Jsonu.Str l) r.output));
      ("attempts", Jsonu.Int r.attempts);
    ]
  @
  if r.fault_trace = [] then []
  else
    [
      ( "fault_trace",
        Jsonu.List (List.map (fun l -> Jsonu.Str l) r.fault_trace) );
    ]

let canonical_json r = Jsonu.to_string (Jsonu.Obj (canonical_obj r))

let json_line r =
  Jsonu.to_string
    (Jsonu.Obj
       (canonical_obj r
       @ [
           ("wall_seconds", Jsonu.Float r.wall_seconds);
           ("cache", Jsonu.Str (if r.from_cache then "hit" else "miss"));
         ]))

type summary = {
  total : int;
  ok : int;
  failed : int;
  timeout : int;
  faulted : int;
  cache_hits : int;
  simulated_total : float;
  wall_total : float;
  elapsed : float;
}

let summarize ~elapsed results =
  List.fold_left
    (fun s r ->
      {
        s with
        total = s.total + 1;
        ok = (s.ok + match r.status with Done -> 1 | _ -> 0);
        failed = (s.failed + match r.status with Failed _ -> 1 | _ -> 0);
        timeout = (s.timeout + match r.status with Timeout _ -> 1 | _ -> 0);
        faulted = (s.faulted + match r.status with Faulted _ -> 1 | _ -> 0);
        cache_hits = (s.cache_hits + if r.from_cache then 1 else 0);
        simulated_total = s.simulated_total +. r.simulated_seconds;
        wall_total = s.wall_total +. r.wall_seconds;
      })
    {
      total = 0;
      ok = 0;
      failed = 0;
      timeout = 0;
      faulted = 0;
      cache_hits = 0;
      simulated_total = 0.;
      wall_total = 0.;
      elapsed;
    }
    results

let json_of_summary s =
  Jsonu.to_string
    (Jsonu.Obj
       [
         ("summary", Jsonu.Bool true);
         ("total", Jsonu.Int s.total);
         ("ok", Jsonu.Int s.ok);
         ("failed", Jsonu.Int s.failed);
         ("timeout", Jsonu.Int s.timeout);
         ("faulted", Jsonu.Int s.faulted);
         ("cache_hits", Jsonu.Int s.cache_hits);
         ("simulated_seconds", Jsonu.Float s.simulated_total);
         ("job_wall_seconds", Jsonu.Float s.wall_total);
         ("elapsed_seconds", Jsonu.Float s.elapsed);
         ( "jobs_per_second",
           Jsonu.Float
             (if s.elapsed > 0. then float_of_int s.total /. s.elapsed else 0.)
         );
       ])

let pp_summary ppf s =
  Format.fprintf ppf
    "%d jobs: %d ok, %d failed, %d timeout, %d faulted; %d cache hit%s; %.3f \
     simulated s; %.3f s elapsed (%.1f jobs/s)"
    s.total s.ok s.failed s.timeout s.faulted s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.simulated_total s.elapsed
    (if s.elapsed > 0. then float_of_int s.total /. s.elapsed else 0.)
