(** Write-ahead job journal for the serve daemon.

    Every accepted job is appended to [<dir>/journal.jsonl] before the
    client sees its ack, and every state transition follows it there:
    [accepted] (with the full wire submit object, so the job can be
    rebuilt without the client), [started], [checkpointed] (the latest
    {!Cm.Machine.checkpoint} blob), [done] and [faulted].  On restart
    {!recover} replays the file, quarantines damaged lines, compacts
    the journal down to its unfinished entries, and hands the daemon a
    requeue list — so a SIGKILL'd daemon loses nothing that was ever
    acknowledged.

    Record framing: one JSON object per line,
    [{"sum":MD5HEX,"rec":{...}}], where [sum] is the MD5 of the
    rendered [rec] object.  A line that is torn, truncated, fails its
    checksum or does not parse is moved to [<file>.corrupt] (appended,
    evidence preserved) and skipped with a one-line warning — replay
    never crashes on a damaged journal, mirroring the disk cache's v2
    quarantine convention.

    Durability policy: [fsync:false] (default) leaves flushing to the
    OS — a daemon crash loses nothing, a kernel crash may lose the
    tail; [fsync:true] fsyncs after every appended record.  All
    appends are thread-safe; append failures (disk full) are counted,
    warned once, and never raised — the daemon degrades to
    non-durable rather than dying. *)

type t

(** One journal record.  [submit] is the wire-format submit object
    ({!Proto.submit_obj}); [status] on [Done_] is the report status
    string ("ok" | "failed" | "timeout" | "cancelled"). *)
type entry =
  | Accepted of {
      digest : string;
      name : string;
      tenant : string;
      submit : Jsonu.t;
    }
  | Started of { digest : string }
  | Checkpointed of { digest : string; ckpt : string }
  | Done_ of { digest : string; status : string }
  | Faulted of { digest : string }

(** A job the replay found accepted but not finished: rebuild it from
    [p_submit] and requeue, resuming from [p_ckpt] when present. *)
type pending = {
  p_digest : string;
  p_name : string;
  p_tenant : string;
  p_submit : Jsonu.t;
  p_ckpt : string option;
  p_started : bool;
}

type replay = {
  pending : pending list;  (** first-accepted order *)
  finished : (string * string) list;
      (** digest → terminal status ("ok"/"failed"/"timeout"/
          "cancelled"/"faulted") *)
  replayed : int;  (** records read back successfully *)
  corrupt : int;  (** lines quarantined to [<file>.corrupt] *)
}

type stats = {
  appended : int;  (** records accepted since open *)
  synced : int;  (** fsyncs performed *)
  bytes : int;  (** bytes written since open *)
  write_failures : int;
  s_replayed : int;
  s_corrupt : int;
  s_requeued : int;
}

val path : dir:string -> string
(** [<dir>/journal.jsonl]. *)

val recover :
  ?fsync:bool ->
  ?keep:(digest:string -> status:string -> bool) ->
  dir:string ->
  unit ->
  (t * replay, string) result
(** Replay the journal under [dir] (an absent file is an empty
    replay), compact it to the pending entries (atomic
    write-then-rename, so a crash mid-recovery keeps the old file),
    and open it for appending.  [Error] only when the directory is
    unusable — a damaged journal body is never an error.

    [keep] is consulted for every digest with a terminal record whose
    [accepted] record is still in the journal: returning [true]
    resurrects the entry into [replay.pending] (and out of
    [replay.finished]) so it is requeued — the daemon uses it for
    [done] jobs whose cached report has vanished.  Default: keep
    nothing. *)

val append : t -> entry -> unit
(** Thread-safe; honours the open-time fsync policy. *)

val entry_json : entry -> Jsonu.t
val entry_of_json : Jsonu.t -> (entry, string) result

val stats : t -> stats

val lag : t -> int
(** Records appended since the last fsync — 0 under [fsync:true];
    under the default policy, the tail a kernel crash could lose. *)

val close : t -> unit

val publish : t -> Obs.t -> unit
(** Mirror the counters as ["ucd.journal.*"] counts; call once per
    journal lifetime (same contract as {!Cache.publish}). *)
