(* Minimal JSON emission (no external dependency).  Only what the batch
   reports and bench summaries need: objects of scalars and string
   lists, printed deterministically in the field order given. *)

type t =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g survives a round-trip; %g would truncate simulated seconds and
   break byte-identical cache determinism for long runs *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Str s -> "\"" ^ escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Bool b -> string_of_bool b
  | List xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"
