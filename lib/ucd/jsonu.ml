(* JSON for batch reports, bench rows and trace lines.  The actual
   implementation lives in Obs.Json (shared with the telemetry spine);
   this alias keeps the historical Ucd.Jsonu name working, now including
   a parser ([of_string]) so trace output can be round-tripped. *)

include Obs.Json
