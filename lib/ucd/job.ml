type t = {
  name : string;
  source : string;
  options : Uc.Codegen.options;
  seed : int;
  fuel : int option;
  deadline : float option;
  faults : Cm.Fault.spec option;
  retries : int option;
  engine : Cm.Machine.engine;
  tune : bool;
}

let make ?(options = Uc.Codegen.default_options) ?(seed = 12345) ?fuel ?deadline
    ?faults ?retries ?(engine = `Fast) ?(tune = false) ~name ~source () =
  { name; source; options; seed; fuel; deadline; faults; retries; engine; tune }

(* The canonical engine rendering used in digests, reports and the CLI;
   every spelling that can change results gets its own string. *)
let engine_string : Cm.Machine.engine -> string = function
  | `Fast -> "fast"
  | `Reference -> "reference"
  | `Sharded n -> Printf.sprintf "sharded:%d" n
  | `Native -> "native"

let engine_names = [ "fast"; "reference"; "sharded"; "native" ]

let engine_of_name ~shards name : (Cm.Machine.engine, string) result =
  match name with
  | "fast" -> Ok `Fast
  | "reference" -> Ok `Reference
  | "sharded" ->
      if shards < 1 then
        Error (Printf.sprintf "shard count must be at least 1 (got %d)" shards)
      else Ok (`Sharded shards)
  | "native" -> Ok `Native
  | s ->
      Error
        (Printf.sprintf "unknown engine %S (valid: %s)" s
           (String.concat ", " engine_names))

let options_summary (o : Uc.Codegen.options) =
  (* this string keys the lowered-IR memo (Cache.memo_ir), so it must
     distinguish every option that changes the emitted Paris program —
     for ir-opt that is the exact pass subset, not just on/off *)
  let iropt =
    if Cm.Iropt.enabled o.Uc.Codegen.ir_opt then
      let passes = Cm.Iropt.config_summary o.Uc.Codegen.ir_opt in
      if passes = Cm.Iropt.config_summary Cm.Iropt.default then Some "iropt"
      else Some (Printf.sprintf "iropt=%s" passes)
    else None
  in
  String.concat " "
    (List.filter_map
       (fun (on, label) -> if on then Some label else None)
       [
         (o.Uc.Codegen.news_opt, "news");
         (o.Uc.Codegen.procopt, "procopt");
         (o.Uc.Codegen.use_mappings, "maps");
         (o.Uc.Codegen.cse, "cse");
       ]
    @ Option.to_list iropt)

let faults_summary = function
  | None -> "none"
  | Some spec -> Cm.Fault.spec_string spec

let fields t =
  [
    ("source", Digest.to_hex (Digest.string t.source));
    ("news", string_of_bool t.options.Uc.Codegen.news_opt);
    ("procopt", string_of_bool t.options.Uc.Codegen.procopt);
    ("maps", string_of_bool t.options.Uc.Codegen.use_mappings);
    ("cse", string_of_bool t.options.Uc.Codegen.cse);
    (* canonical pass list: optimized and unoptimized streams must never
       share a digest (fuel, icount and checkpoints all differ) *)
    ("iropt", Cm.Iropt.config_summary t.options.Uc.Codegen.ir_opt);
    ("seed", string_of_int t.seed);
    ("fuel", match t.fuel with None -> "default" | Some n -> string_of_int n);
    (* the canonical spec string, so equivalent spellings share a digest *)
    ("faults", faults_summary t.faults);
    (* engines are observably identical, but their wall-clock and
       attempt counts are not: cache entries must never be shared *)
    ("engine", engine_string t.engine);
  ]
  (* only present when on, so untuned digests match earlier versions *)
  @ if t.tune then [ ("tune", "true") ] else []

let digest_of_fields kvs =
  (* sort whole pairs, not just keys: a key-only sort is order-sensitive
     for duplicate keys (real field lists have none, but the digest
     should be a pure function of the multiset either way) *)
  let sorted = List.sort compare kvs in
  (* length-prefix each component so distinct field lists can't collide
     by concatenation *)
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (string_of_int (String.length k));
      Buffer.add_char buf ':';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (string_of_int (String.length v));
      Buffer.add_char buf ':';
      Buffer.add_string buf v;
      Buffer.add_char buf ';')
    sorted;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest t = digest_of_fields (fields t)
