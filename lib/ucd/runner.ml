let now () = Unix.gettimeofday ()

type policy = {
  retries : int;
  fuel_slice : int;
  resume : bool;
  backoff_base : float;
  backoff_cap : float;
}

let default_policy =
  {
    retries = 0;
    fuel_slice = 100_000;
    resume = true;
    backoff_base = 0.01;
    backoff_cap = 0.25;
  }

(* Capped exponential backoff with deterministic, seeded jitter: the
   sleep for attempt [k] is [min cap (base * 2^k)] scaled into
   [0.5, 1.5) by a hash of (job seed, attempt), so colliding retries
   from a fleet of identical jobs spread out, reproducibly. *)
let backoff_delay policy ~seed ~attempt =
  if policy.backoff_base <= 0. then 0.
  else begin
    let base = policy.backoff_base *. (2. ** float_of_int attempt) in
    let capped = Float.min policy.backoff_cap base in
    let h = ((seed * 1103515245) + 12345 + (attempt * 40503)) land 0x3FFFFFFF in
    let frac = float_of_int (h land 0xFFFF) /. 65536. in
    capped *. (0.5 +. frac)
  end

let compute ~policy ~t0 ~obs ?ckpt ?on_checkpoint cache (job : Job.t) digest =
  let source_digest = Digest.to_hex (Digest.string job.Job.source) in
  (* tuned and untuned lowerings of the same source+options emit
     different Paris programs: they must not share a memo entry *)
  let options_key =
    Job.options_summary job.Job.options
    ^ if job.Job.tune then " tune" else ""
  in
  let finish ?(attempts = 1) ?(trace = []) ?(metrics = []) ?(effective = "")
      status simulated output =
    {
      Report.job_name = job.Job.name;
      digest;
      options = options_key;
      engine = Job.engine_string job.Job.engine;
      (* "" = no machine ever ran (front-end failures); Report renders
         that as [engine] *)
      engine_effective = effective;
      seed = job.Job.seed;
      tuned = job.Job.tune;
      status;
      simulated_seconds = simulated;
      metrics;
      output;
      wall_seconds = 0.;
      from_cache = false;
      attempts;
      fault_trace = trace;
    }
  in
  try
    let ast =
      Cache.memo_ast cache ~source_digest (fun () ->
          Uc.Compile.parse_source ~obs job.Job.source)
    in
    let compiled =
      Cache.memo_ir cache ~source_digest ~options_key (fun () ->
          let layouts =
            if job.Job.tune then
              Some
                (Uc.Layoutsel.search ~options:job.Job.options
                   (Uc.Optimize.fold_program (Uc.Transform.apply ast)))
                  .Uc.Layoutsel.table
            else None
          in
          Uc.Compile.lower ?layouts ~options:job.Job.options ~obs ast)
    in
    let deadline_over () =
      match job.Job.deadline with
      | Some limit -> now () -. t0 > limit
      | None -> false
    in
    let retries = Option.value job.Job.retries ~default:policy.retries in
    (* the last checkpoint of a surviving slice, shared across attempts
       so a retry can resume instead of replaying from scratch; a
       caller-supplied blob (journal recovery) seeds it, and the
       restore path's Machine.Error fallback below covers a stale blob
       whose program digest no longer matches *)
    let last_ckpt = ref ckpt in
    let rec attempt_run attempt trace =
      if Obs.enabled obs then
        Obs.point obs "job.attempt"
          ~attrs:
            [
              ("name", Obs.Json.Str job.Job.name);
              ("attempt", Obs.Json.Int (attempt + 1));
            ];
      let plan =
        Option.map (Cm.Fault.instantiate ~attempt) job.Job.faults
      in
      let t =
        match !last_ckpt with
        | Some data when policy.resume -> (
            try
              Uc.Compile.restore_compiled ~engine:job.Job.engine ?faults:plan
                ~obs compiled data
            with Cm.Machine.Error _ ->
              Uc.Compile.start_compiled ~seed:job.Job.seed ?fuel:job.Job.fuel
                ~engine:job.Job.engine ?faults:plan ~obs compiled)
        | _ ->
            Uc.Compile.start_compiled ~seed:job.Job.seed ?fuel:job.Job.fuel
              ~engine:job.Job.engine ?faults:plan ~obs compiled
      in
      (* the deadline is enforced between fuel slices: a slow job stops
         within one slice of its limit instead of holding the worker *)
      let rec slices () =
        if deadline_over () then `Deadline
        else
          match Uc.Compile.step t ~fuel_slice:policy.fuel_slice with
          | `Done -> `Finished
          | `More ->
              Obs.count obs "ucd.slices" 1;
              if
                policy.resume
                && (job.Job.faults <> None || on_checkpoint <> None)
              then begin
                let blob = Uc.Compile.checkpoint t in
                last_ckpt := Some blob;
                (* durability hook: the serve daemon journals the blob
                   so a restarted daemon resumes mid-run *)
                Option.iter (fun f -> f blob) on_checkpoint
              end;
              slices ()
      in
      let machine_metrics () =
        Cm.Machine.publish t.Uc.Compile.machine;
        Cm.Cost.metrics (Uc.Compile.meter t)
      in
      (* which engine actually executed: `native` resolves to itself or
         to `fast` (sticky per machine), every other engine to itself *)
      let effective () =
        Job.engine_string
          (Cm.Machine.effective_engine t.Uc.Compile.machine)
      in
      match slices () with
      | `Finished ->
          if deadline_over () then
            (* finished, but past the limit: keep the old post-hoc
               verdict so a deadline is never beaten by luck *)
            let limit = Option.get job.Job.deadline in
            finish ~attempts:(attempt + 1) ~trace:(List.rev trace)
              ~metrics:(machine_metrics ()) ~effective:(effective ())
              (Report.Timeout limit)
              (Uc.Compile.elapsed_seconds t)
              (Uc.Compile.output t)
          else
            finish ~attempts:(attempt + 1) ~trace:(List.rev trace)
              ~metrics:(machine_metrics ()) ~effective:(effective ())
              Report.Done
              (Uc.Compile.elapsed_seconds t)
              (Uc.Compile.output t)
      | `Deadline ->
          let limit = Option.get job.Job.deadline in
          finish ~attempts:(attempt + 1) ~trace:(List.rev trace)
            ~metrics:(machine_metrics ()) ~effective:(effective ())
            (Report.Timeout limit)
            (Uc.Compile.elapsed_seconds t)
            (Uc.Compile.output t)
      | exception Cm.Machine.Error msg ->
          (* same rendering as the outer handler, but [t] is in scope
             here so the row records which engine actually errored *)
          finish ~attempts:(attempt + 1) ~trace:(List.rev trace)
            ~effective:(effective ())
            (Report.Failed ("machine: " ^ msg))
            0. []
      | exception Cm.Machine.Fault msg ->
          let trace = msg :: trace in
          if attempt >= retries then
            (* quarantined: the fault outlived its retry budget *)
            finish ~attempts:(attempt + 1) ~trace:(List.rev trace)
              ~effective:(effective ()) (Report.Faulted msg) 0. []
          else begin
            Obs.count obs "ucd.retries" 1;
            if Obs.enabled obs then
              Obs.point obs "job.retry"
                ~attrs:
                  [
                    ("name", Obs.Json.Str job.Job.name);
                    ("fault", Obs.Json.Str msg);
                  ];
            let delay =
              backoff_delay policy ~seed:job.Job.seed ~attempt
            in
            if delay > 0. then Unix.sleepf delay;
            attempt_run (attempt + 1) trace
          end
    in
    attempt_run 0 []
  with
  | Uc.Loc.Error (loc, msg) ->
      finish (Report.Failed (Format.asprintf "%a: %s" Uc.Loc.pp loc msg)) 0. []
  | Cm.Machine.Error msg -> finish (Report.Failed ("machine: " ^ msg)) 0. []
  | Uc.Interp.Runtime_error msg ->
      finish (Report.Failed ("runtime: " ^ msg)) 0. []
  | Failure msg -> finish (Report.Failed msg) 0. []
  | Not_found -> finish (Report.Failed "internal lookup failure") 0. []

let status_string = function
  | Report.Done -> "ok"
  | Report.Failed _ -> "failed"
  | Report.Timeout _ -> "timeout"
  | Report.Faulted _ -> "faulted"

let run_job ?(policy = default_policy) ?(obs = Obs.null) ?ckpt ?on_checkpoint
    ~cache (job : Job.t) =
  let t0 = now () in
  let digest = Job.digest job in
  (* fault-bearing runs are policy-dependent (retry budget, resume), so
     they are computed fresh every time, like timeouts *)
  let cacheable = job.Job.faults = None in
  Obs.with_span obs "job"
    ~attrs:
      [ ("name", Obs.Json.Str job.Job.name); ("digest", Obs.Json.Str digest) ]
    (fun () ->
      let cached = if cacheable then Cache.find_run cache digest else None in
      if Obs.enabled obs then
        Obs.point obs "job.cache"
          ~attrs:
            [
              ("name", Obs.Json.Str job.Job.name);
              ( "result",
                Obs.Json.Str
                  (if not cacheable then "bypass"
                   else match cached with Some _ -> "hit" | None -> "miss") );
            ];
      let r =
        match cached with
        | Some r ->
            { r with Report.from_cache = true; wall_seconds = now () -. t0 }
        | None ->
            let r = compute ~policy ~t0 ~obs ?ckpt ?on_checkpoint cache job digest in
            let wall = now () -. t0 in
            (match r.Report.status with
            | Report.Timeout _ | Report.Faulted _ -> ()
            | _ when not cacheable -> ()
            | _ -> Cache.store_run cache digest r);
            { r with Report.wall_seconds = wall }
      in
      if Obs.enabled obs then
        Obs.point obs "job.done"
          ~attrs:
            [
              ("name", Obs.Json.Str job.Job.name);
              ("status", Obs.Json.Str (status_string r.Report.status));
              ("attempts", Obs.Json.Int r.Report.attempts);
              ("cache", Obs.Json.Bool r.Report.from_cache);
            ];
      r)

(* a worker-level surprise (Out_of_memory, Stack_overflow …) rendered
   as a report row, so a crashing job never kills a batch or leaks a
   serve admission slot *)
let crash_result (job : Job.t) exn =
  {
    Report.job_name = job.Job.name;
    digest = Job.digest job;
    options = Job.options_summary job.Job.options;
    engine = Job.engine_string job.Job.engine;
    engine_effective = "";
    seed = job.Job.seed;
    tuned = job.Job.tune;
    status = Report.Failed (Printexc.to_string exn);
    simulated_seconds = 0.;
    metrics = [];
    output = [];
    wall_seconds = 0.;
    from_cache = false;
    attempts = 1;
    fault_trace = [];
  }

let run_jobs ?domains ?queue_bound ?policy ?obs ~cache jobs =
  List.map2
    (fun (job : Job.t) outcome ->
      match outcome with
      | Ok r -> r
      | Error exn -> crash_result job exn)
    jobs
    (Pool.map ?domains ?queue_bound ?obs
       (fun job -> run_job ?policy ?obs ~cache job)
       jobs)

let corpus_jobs ?options ?seed ?fuel ?deadline ?faults ?retries ?engine ?tune ()
    =
  List.map
    (fun (name, source) ->
      Job.make ?options ?seed ?fuel ?deadline ?faults ?retries ?engine ?tune
        ~name ~source ())
    Uc_programs.Programs.all_named
