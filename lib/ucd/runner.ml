let now () = Unix.gettimeofday ()

let compute cache (job : Job.t) digest =
  let source_digest = Digest.to_hex (Digest.string job.Job.source) in
  let options_key = Job.options_summary job.Job.options in
  let finish status simulated output =
    {
      Report.job_name = job.Job.name;
      digest;
      options = options_key;
      seed = job.Job.seed;
      status;
      simulated_seconds = simulated;
      output;
      wall_seconds = 0.;
      from_cache = false;
    }
  in
  try
    let ast =
      Cache.memo_ast cache ~source_digest (fun () ->
          Uc.Compile.parse_source job.Job.source)
    in
    let compiled =
      Cache.memo_ir cache ~source_digest ~options_key (fun () ->
          Uc.Compile.lower ~options:job.Job.options ast)
    in
    let t =
      Uc.Compile.run_compiled ~seed:job.Job.seed ?fuel:job.Job.fuel compiled
    in
    finish Report.Done
      (Uc.Compile.elapsed_seconds t)
      (Uc.Compile.output t)
  with
  | Uc.Loc.Error (loc, msg) ->
      finish
        (Report.Failed (Format.asprintf "%a: %s" Uc.Loc.pp loc msg))
        0. []
  | Cm.Machine.Error msg -> finish (Report.Failed ("machine: " ^ msg)) 0. []
  | Uc.Interp.Runtime_error msg ->
      finish (Report.Failed ("runtime: " ^ msg)) 0. []
  | Failure msg -> finish (Report.Failed msg) 0. []
  | Not_found -> finish (Report.Failed "internal lookup failure") 0. []

let run_job ~cache (job : Job.t) =
  let t0 = now () in
  let digest = Job.digest job in
  match Cache.find_run cache digest with
  | Some r -> { r with Report.from_cache = true; wall_seconds = now () -. t0 }
  | None ->
      let r = compute cache job digest in
      let wall = now () -. t0 in
      let r =
        match job.Job.deadline with
        | Some limit when wall > limit ->
            (* wall-clock verdicts are not content: report, don't cache *)
            { r with Report.status = Report.Timeout limit; wall_seconds = wall }
        | _ ->
            Cache.store_run cache digest r;
            { r with Report.wall_seconds = wall }
      in
      r

let run_jobs ?domains ?queue_bound ~cache jobs =
  List.map2
    (fun (job : Job.t) outcome ->
      match outcome with
      | Ok r -> r
      | Error exn ->
          (* a worker-level surprise (Out_of_memory, Stack_overflow …)
             still yields a result instead of killing the batch *)
          {
            Report.job_name = job.Job.name;
            digest = Job.digest job;
            options = Job.options_summary job.Job.options;
            seed = job.Job.seed;
            status = Report.Failed (Printexc.to_string exn);
            simulated_seconds = 0.;
            output = [];
            wall_seconds = 0.;
            from_cache = false;
          })
    jobs
    (Pool.map ?domains ?queue_bound (run_job ~cache) jobs)

let corpus_jobs ?options ?seed ?fuel ?deadline () =
  List.map
    (fun (name, source) ->
      Job.make ?options ?seed ?fuel ?deadline ~name ~source ())
    Uc_programs.Programs.all_named
