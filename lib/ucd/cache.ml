type stats = {
  ast_hits : int;
  ast_misses : int;
  ir_hits : int;
  ir_misses : int;
  run_hits : int;
  run_misses : int;
  corruptions : int;
  write_failures : int;
  native_hits : int;
  native_misses : int;
  native_codegen_ms : float;
  native_build_ms : float;
}

type counters = {
  mutable c_ast_hits : int;
  mutable c_ast_misses : int;
  mutable c_ir_hits : int;
  mutable c_ir_misses : int;
  mutable c_run_hits : int;
  mutable c_run_misses : int;
  mutable c_corruptions : int;
  mutable c_write_failures : int;
  mutable c_native_hits : int;
  mutable c_native_misses : int;
  mutable c_native_codegen_ms : float;
  mutable c_native_build_ms : float;
}

type t = {
  lock : Mutex.t;
  asts : (string, Uc.Ast.program) Hashtbl.t;
  irs : (string * string, Uc.Codegen.compiled) Hashtbl.t;
  runs : (string, Report.result) Hashtbl.t;
  dir : string option;
  counters : counters;
  (* chaos hook: consulted once per disk write; [true] makes the write
     fail as if the disk were full, through the ordinary
     write_failures counting/warning path *)
  mutable write_fault : (unit -> bool) option;
}

(* bump when Report.result or the artifact layout changes shape: stale
   artifacts then read as misses instead of Marshal segfault fodder.
   v2: adds a payload checksum (corruption is detected, not guessed).
   v3: Report.result gains the metrics column.
   v4: Report.result gains the engine column.
   v5: Report.result gains the engine_effective column; compiled-native
       .cmxs blobs join the store, content-addressed by Cm.Codegen.key. *)
let artifact_version = 5

let make ?dir () =
  {
    lock = Mutex.create ();
    asts = Hashtbl.create 64;
    irs = Hashtbl.create 64;
    runs = Hashtbl.create 256;
    dir;
    counters =
      {
        c_ast_hits = 0;
        c_ast_misses = 0;
        c_ir_hits = 0;
        c_ir_misses = 0;
        c_run_hits = 0;
        c_run_misses = 0;
        c_corruptions = 0;
        c_write_failures = 0;
        c_native_hits = 0;
        c_native_misses = 0;
        c_native_codegen_ms = 0.;
        c_native_build_ms = 0.;
      };
    write_fault = None;
  }

let set_write_fault t f = t.write_fault <- Some f

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* the compute [f] runs outside the lock: two domains may race to build
   the same artifact (both results are identical), but no domain ever
   blocks the cache while compiling *)
let memo ~table ~hit ~miss t key f =
  let cached = with_lock t (fun () -> Hashtbl.find_opt table key) in
  match cached with
  | Some v ->
      with_lock t (fun () -> hit t.counters);
      v
  | None ->
      let v = f () in
      with_lock t (fun () ->
          miss t.counters;
          if not (Hashtbl.mem table key) then Hashtbl.replace table key v);
      v

let memo_ast t ~source_digest f =
  memo ~table:t.asts
    ~hit:(fun c -> c.c_ast_hits <- c.c_ast_hits + 1)
    ~miss:(fun c -> c.c_ast_misses <- c.c_ast_misses + 1)
    t source_digest f

let memo_ir t ~source_digest ~options_key f =
  memo ~table:t.irs
    ~hit:(fun c -> c.c_ir_hits <- c.c_ir_hits + 1)
    ~miss:(fun c -> c.c_ir_misses <- c.c_ir_misses + 1)
    t (source_digest, options_key) f

let artifact_path dir digest = Filename.concat dir (digest ^ ".ucd")

(* compiled-native code for Cm.Codegen, same container format, its own
   extension (the key spaces are disjoint anyway: Codegen.key digests
   IR + versions, job digests digest job fields) *)
let native_path dir key = Filename.concat dir (key ^ ".cmxs")
let quarantine_path dir digest = Filename.concat dir (digest ^ ".corrupt")

(* Artifact layout (v2): version int, then the MD5 of the payload, then
   the payload itself.  A missing file or an old version is a plain
   miss; anything torn, truncated or checksum-divergent is [`Corrupt]
   and gets quarantined by the caller rather than silently recomputed
   forever. *)

let read_blob path : [ `Hit of string | `Miss | `Corrupt ] =
  match open_in_bin path with
  | exception Sys_error _ -> `Miss
  | ic -> (
      let body () =
        let v : int = Marshal.from_channel ic in
        if v <> artifact_version then `Miss
        else begin
          let sum : Digest.t = Marshal.from_channel ic in
          let payload : string = Marshal.from_channel ic in
          if Digest.string payload <> sum then `Corrupt else `Hit payload
        end
      in
      match Fun.protect ~finally:(fun () -> close_in_noerr ic) body with
      | outcome -> outcome
      | exception _ -> `Corrupt)

let read_artifact path : [ `Hit of Report.result | `Miss | `Corrupt ] =
  match read_blob path with
  | `Miss -> `Miss
  | `Corrupt -> `Corrupt
  | `Hit payload -> (
      match (Marshal.from_string payload 0 : Report.result) with
      | r -> `Hit r
      | exception _ -> `Corrupt)

let write_blob path payload =
  try
    (* write-then-rename so concurrent readers never see a torn file *)
    let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Marshal.to_channel oc artifact_version [];
        Marshal.to_channel oc (Digest.string payload) [];
        Marshal.to_channel oc payload []);
    Sys.rename tmp path;
    true
  with _ -> false

let write_artifact path (r : Report.result) =
  write_blob path (Marshal.to_string r [])

(* Move a damaged artifact aside so the slot can be rewritten and the
   evidence survives for inspection.  Best-effort: a racing domain may
   have quarantined it first. *)
let quarantine_file src dst =
  try Sys.rename src dst with _ -> ( try Sys.remove src with _ -> ())

let quarantine dir digest =
  quarantine_file (artifact_path dir digest) (quarantine_path dir digest)

(* Wire a dir-backed cache into Cm.Codegen as its persistent .cmxs
   store, so compiled native code is shared across processes just like
   run results.  A corrupt blob quarantines to [<key>.corrupt] and
   reads as a miss (Codegen then rebuilds and overwrites); hits, misses
   and codegen/build milliseconds land in the native_* counters.  The
   hook is global and process-wide: the most recently created dir-backed
   cache serves it (memory-only caches leave it untouched). *)
let install_native_store t dir =
  Cm.Codegen.set_store
    (Some
       {
         Cm.Codegen.st_load =
           (fun key ->
             let found =
               match read_blob (native_path dir key) with
               | `Hit payload -> Some payload
               | `Miss -> None
               | `Corrupt ->
                   with_lock t (fun () ->
                       t.counters.c_corruptions <- t.counters.c_corruptions + 1);
                   quarantine_file (native_path dir key)
                     (quarantine_path dir key);
                   None
             in
             with_lock t (fun () ->
                 let c = t.counters in
                 match found with
                 | Some _ -> c.c_native_hits <- c.c_native_hits + 1
                 | None -> c.c_native_misses <- c.c_native_misses + 1);
             found);
         st_save =
           (fun key payload ->
             (* best-effort, like run artifacts; a failed write just
                means this host rebuilds next process *)
             ignore (write_blob (native_path dir key) payload));
         st_record =
           (fun ~codegen_ms ~build_ms ->
             with_lock t (fun () ->
                 let c = t.counters in
                 c.c_native_codegen_ms <- c.c_native_codegen_ms +. codegen_ms;
                 c.c_native_build_ms <- c.c_native_build_ms +. build_ms));
       })

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  let t = make ?dir () in
  Option.iter (install_native_store t) dir;
  t

let find_run t digest =
  let mem = with_lock t (fun () -> Hashtbl.find_opt t.runs digest) in
  let found =
    match mem with
    | Some _ -> mem
    | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
            match read_artifact (artifact_path dir digest) with
            | `Hit r ->
                with_lock t (fun () -> Hashtbl.replace t.runs digest r);
                Some r
            | `Miss -> None
            | `Corrupt ->
                with_lock t (fun () ->
                    t.counters.c_corruptions <- t.counters.c_corruptions + 1);
                quarantine dir digest;
                None))
  in
  with_lock t (fun () ->
      let c = t.counters in
      match found with
      | Some _ -> c.c_run_hits <- c.c_run_hits + 1
      | None -> c.c_run_misses <- c.c_run_misses + 1);
  found

let store_run t digest r =
  with_lock t (fun () -> Hashtbl.replace t.runs digest r);
  match t.dir with
  | Some dir ->
      let injected =
        match t.write_fault with Some f -> f () | None -> false
      in
      if injected || not (write_artifact (artifact_path dir digest) r) then begin
        let first =
          with_lock t (fun () ->
              let c = t.counters in
              c.c_write_failures <- c.c_write_failures + 1;
              c.c_write_failures = 1)
        in
        if first then
          Printf.eprintf
            "ucd: warning: failed to persist cache artifact %s (disk full or \
             unwritable?); continuing without disk persistence for it\n%!"
            digest
      end
  | None -> ()

let stats t =
  with_lock t (fun () ->
      let c = t.counters in
      {
        ast_hits = c.c_ast_hits;
        ast_misses = c.c_ast_misses;
        ir_hits = c.c_ir_hits;
        ir_misses = c.c_ir_misses;
        run_hits = c.c_run_hits;
        run_misses = c.c_run_misses;
        corruptions = c.c_corruptions;
        write_failures = c.c_write_failures;
        native_hits = c.c_native_hits;
        native_misses = c.c_native_misses;
        native_codegen_ms = c.c_native_codegen_ms;
        native_build_ms = c.c_native_build_ms;
      })

(* Mirror the cumulative counters into a telemetry scope as
   "ucd.cache."-prefixed counts.  Call once, after a batch; calling
   twice would double the monotonic counters. *)
let publish t obs =
  if Obs.enabled obs then begin
    let s = stats t in
    List.iter
      (fun (name, v) -> Obs.count obs ("ucd.cache." ^ name) v)
      [
        ("ast_hits", s.ast_hits);
        ("ast_misses", s.ast_misses);
        ("ir_hits", s.ir_hits);
        ("ir_misses", s.ir_misses);
        ("run_hits", s.run_hits);
        ("run_misses", s.run_misses);
        ("corruptions", s.corruptions);
        ("write_failures", s.write_failures);
        ("native_hits", s.native_hits);
        ("native_misses", s.native_misses);
      ];
    Obs.sample obs "ucd.cache.native_codegen_ms" s.native_codegen_ms;
    Obs.sample obs "ucd.cache.native_build_ms" s.native_build_ms
  end

let pp_stats ppf s =
  Format.fprintf ppf "cache: ast %d/%d hit, ir %d/%d hit, run %d/%d hit"
    s.ast_hits
    (s.ast_hits + s.ast_misses)
    s.ir_hits
    (s.ir_hits + s.ir_misses)
    s.run_hits
    (s.run_hits + s.run_misses);
  if s.corruptions > 0 then
    Format.fprintf ppf ", %d corrupt artifact%s quarantined" s.corruptions
      (if s.corruptions = 1 then "" else "s");
  if s.write_failures > 0 then
    Format.fprintf ppf ", %d write failure%s" s.write_failures
      (if s.write_failures = 1 then "" else "s");
  if s.native_hits + s.native_misses > 0 then
    Format.fprintf ppf ", native %d/%d hit (%.0f ms codegen, %.0f ms build)"
      s.native_hits
      (s.native_hits + s.native_misses)
      s.native_codegen_ms s.native_build_ms
