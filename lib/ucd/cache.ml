type stats = {
  ast_hits : int;
  ast_misses : int;
  ir_hits : int;
  ir_misses : int;
  run_hits : int;
  run_misses : int;
}

type counters = {
  mutable c_ast_hits : int;
  mutable c_ast_misses : int;
  mutable c_ir_hits : int;
  mutable c_ir_misses : int;
  mutable c_run_hits : int;
  mutable c_run_misses : int;
}

type t = {
  lock : Mutex.t;
  asts : (string, Uc.Ast.program) Hashtbl.t;
  irs : (string * string, Uc.Codegen.compiled) Hashtbl.t;
  runs : (string, Report.result) Hashtbl.t;
  dir : string option;
  counters : counters;
}

(* bump when Report.result changes shape: stale artifacts then read as
   misses instead of Marshal segfault fodder *)
let artifact_version = 1

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  {
    lock = Mutex.create ();
    asts = Hashtbl.create 64;
    irs = Hashtbl.create 64;
    runs = Hashtbl.create 256;
    dir;
    counters =
      {
        c_ast_hits = 0;
        c_ast_misses = 0;
        c_ir_hits = 0;
        c_ir_misses = 0;
        c_run_hits = 0;
        c_run_misses = 0;
      };
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* the compute [f] runs outside the lock: two domains may race to build
   the same artifact (both results are identical), but no domain ever
   blocks the cache while compiling *)
let memo ~table ~hit ~miss t key f =
  let cached = with_lock t (fun () -> Hashtbl.find_opt table key) in
  match cached with
  | Some v ->
      with_lock t (fun () -> hit t.counters);
      v
  | None ->
      let v = f () in
      with_lock t (fun () ->
          miss t.counters;
          if not (Hashtbl.mem table key) then Hashtbl.replace table key v);
      v

let memo_ast t ~source_digest f =
  memo ~table:t.asts
    ~hit:(fun c -> c.c_ast_hits <- c.c_ast_hits + 1)
    ~miss:(fun c -> c.c_ast_misses <- c.c_ast_misses + 1)
    t source_digest f

let memo_ir t ~source_digest ~options_key f =
  memo ~table:t.irs
    ~hit:(fun c -> c.c_ir_hits <- c.c_ir_hits + 1)
    ~miss:(fun c -> c.c_ir_misses <- c.c_ir_misses + 1)
    t (source_digest, options_key) f

let artifact_path dir digest = Filename.concat dir (digest ^ ".ucd")

let read_artifact path : Report.result option =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let v : int = Marshal.from_channel ic in
        if v <> artifact_version then None
        else Some (Marshal.from_channel ic : Report.result))
  with _ -> None

let write_artifact path (r : Report.result) =
  try
    (* write-then-rename so concurrent readers never see a torn file *)
    let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Marshal.to_channel oc artifact_version [];
        Marshal.to_channel oc r []);
    Sys.rename tmp path
  with _ -> ()

let find_run t digest =
  let mem = with_lock t (fun () -> Hashtbl.find_opt t.runs digest) in
  let found =
    match mem with
    | Some _ -> mem
    | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
            match read_artifact (artifact_path dir digest) with
            | Some r ->
                with_lock t (fun () -> Hashtbl.replace t.runs digest r);
                Some r
            | None -> None))
  in
  with_lock t (fun () ->
      let c = t.counters in
      match found with
      | Some _ -> c.c_run_hits <- c.c_run_hits + 1
      | None -> c.c_run_misses <- c.c_run_misses + 1);
  found

let store_run t digest r =
  with_lock t (fun () -> Hashtbl.replace t.runs digest r);
  match t.dir with
  | Some dir -> write_artifact (artifact_path dir digest) r
  | None -> ()

let stats t =
  with_lock t (fun () ->
      let c = t.counters in
      {
        ast_hits = c.c_ast_hits;
        ast_misses = c.c_ast_misses;
        ir_hits = c.c_ir_hits;
        ir_misses = c.c_ir_misses;
        run_hits = c.c_run_hits;
        run_misses = c.c_run_misses;
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "cache: ast %d/%d hit, ir %d/%d hit, run %d/%d hit"
    s.ast_hits
    (s.ast_hits + s.ast_misses)
    s.ir_hits
    (s.ir_hits + s.ir_misses)
    s.run_hits
    (s.run_hits + s.run_misses)
