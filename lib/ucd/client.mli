(** Client side of the serve protocol: connect + handshake, then a thin
    blocking send/recv surface over {!Proto}.  One request pipeline per
    connection — callers wanting concurrency open more connections.
    Used by [ucc submit], the loopback tests, and the bench load
    generator. *)

type addr = Unix_path of string | Tcp of string * int

type t

(** Connect, send [hello], await [welcome].  Ignores [SIGPIPE]
    process-wide.  Errors are human-readable strings (connect failure,
    version mismatch, protocol rejection). *)
val connect :
  ?tenant:string ->
  ?priority:Proto.priority ->
  ?max_frame:int ->
  addr ->
  (t, string) result

(** {!connect} with capped exponential backoff and deterministic seeded
    jitter between attempts (default: 8 attempts, 50 ms doubling capped
    at 1 s) — the reconnect primitive behind [ucc submit --reconnect]
    and [ucc --wait] surviving a daemon restart.  The final error
    carries the attempt count. *)
val connect_retry :
  ?tenant:string ->
  ?priority:Proto.priority ->
  ?max_frame:int ->
  ?attempts:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?seed:int ->
  addr ->
  (t, string) result

(** Session id granted by the server's [welcome]. *)
val session : t -> int

val send : t -> Proto.client_msg -> (unit, string) result

(** Next server frame, blocking.  [Error] on EOF, oversized or
    unparseable frames. *)
val recv : t -> (Proto.server_msg, string) result

(** Request/await helpers.  [other] receives any interleaved frames
    (reports, trace events) that arrive before the awaited reply;
    default drops them.  A server [error] frame answers the pending
    request and surfaces as [Error "code: msg"]. *)

val stats :
  ?other:(Proto.server_msg -> unit) -> t -> (Jsonu.t, string) result

(** Returns the server's in-flight count; the server begins a graceful
    shutdown.  Operator-only: a TCP connection gets [Error "denied: …"]
    and the server keeps running. *)
val drain : ?other:(Proto.server_msg -> unit) -> t -> (int, string) result

(** Status by content digest: [(state, row)] where [state] is
    ["queued"/"running"/"done"/"faulted"/"cancelled"/"unknown"] and
    [row] the report row when the server still has (or cached) it.
    Digests survive daemon restarts, so this is how [--wait] recovers
    after a reconnect. *)
val status_digest :
  ?other:(Proto.server_msg -> unit) ->
  t ->
  string ->
  (string * Jsonu.t option, string) result

(** The read-only operational snapshot behind [ucc status]: uptime,
    pool/queue depth, journal lag, per-tenant quota usage.  Allowed on
    TCP. *)
val server_status :
  ?other:(Proto.server_msg -> unit) -> t -> (Jsonu.t, string) result

val set_trace :
  ?other:(Proto.server_msg -> unit) -> t -> bool -> (bool, string) result

val close : t -> unit
