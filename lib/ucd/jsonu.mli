(** JSON for batch reports, bench rows, trace lines and the `ucc serve`
    wire protocol.  The implementation is {!Obs.Json} (shared with the
    telemetry spine); this interface pins down the properties the wire
    protocol depends on:

    - {b String transparency.}  [to_string (Str s)] followed by
      [of_string] recovers [s] byte for byte for {e every} OCaml string:
      ["\""], ["\\"] and ASCII control bytes (< 0x20) are escaped
      (["\\n"], ["\\u0007"], …) and everything else — including DEL and
      non-ASCII bytes 0x80–0xFF — passes through raw.  The protocol
      treats strings as byte sequences; no UTF-8 validation is performed
      at either end.  [test/test_serve.ml] holds a QCheck round-trip
      property over arbitrary strings to this contract.
    - {b Emission determinism.}  Field order is preserved as given, and
      floats render via {!float_repr} so a printed line re-parses and
      re-prints byte-identically (the cache and the byte-identical
      serve-vs-batch gate both lean on this).
    - {b Strict framing.}  [of_string] rejects trailing garbage, so one
      JSON-lines frame is exactly one document. *)

include module type of struct
  include Obs.Json
end
