let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* ---- bounded blocking queue ---- *)

type 'a queue = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  empty_and_idle : Condition.t;  (* signalled when depth and busy hit 0 *)
  buf : 'a Queue.t;
  bound : int;
  mutable closed : bool;
  (* health counters, all under [lock] *)
  mutable pushed : int;  (* accepted into the queue *)
  mutable blocked : int;  (* blocking pushes that had to wait *)
  mutable rejected : int;  (* non-blocking pushes refused: queue full *)
  mutable max_depth : int;  (* high-water mark of the queue length *)
  mutable busy : int;  (* workers currently running a task *)
}

let q_create bound =
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    empty_and_idle = Condition.create ();
    buf = Queue.create ();
    bound;
    closed = false;
    pushed = 0;
    blocked = 0;
    rejected = 0;
    max_depth = 0;
    busy = 0;
  }

let q_accept_locked q x =
  Queue.push x q.buf;
  q.pushed <- q.pushed + 1;
  if Queue.length q.buf > q.max_depth then q.max_depth <- Queue.length q.buf;
  Condition.signal q.not_empty

let q_push q x =
  Mutex.lock q.lock;
  if Queue.length q.buf >= q.bound then q.blocked <- q.blocked + 1;
  while Queue.length q.buf >= q.bound do
    Condition.wait q.not_full q.lock
  done;
  q_accept_locked q x;
  Mutex.unlock q.lock

(* admission-control path: never blocks, never queues past the bound *)
let q_try_push q x =
  Mutex.lock q.lock;
  let r =
    if q.closed then `Closed
    else if Queue.length q.buf >= q.bound then begin
      q.rejected <- q.rejected + 1;
      `Overloaded
    end
    else begin
      q_accept_locked q x;
      `Accepted
    end
  in
  Mutex.unlock q.lock;
  r

let q_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.not_empty;
  (* a blocking push waiting for room must notice the close too *)
  Condition.broadcast q.not_full;
  Mutex.unlock q.lock

(* None once the queue is closed and drained *)
let q_pop q =
  Mutex.lock q.lock;
  let rec wait () =
    match Queue.take_opt q.buf with
    | Some x ->
        q.busy <- q.busy + 1;
        Condition.signal q.not_full;
        Mutex.unlock q.lock;
        Some x
    | None ->
        if q.closed then begin
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.not_empty q.lock;
          wait ()
        end
  in
  wait ()

(* a worker finished the task it popped *)
let q_task_done q =
  Mutex.lock q.lock;
  q.busy <- q.busy - 1;
  if q.busy = 0 && Queue.is_empty q.buf then
    Condition.broadcast q.empty_and_idle;
  Mutex.unlock q.lock

(* ---- health snapshot ---- *)

type stats = {
  domains : int;
  queue_bound : int;
  queue_depth : int;
  busy : int;
  idle : int;
  submitted : int;
  completed : int;
  blocked_pushes : int;
  rejected_pushes : int;
  max_depth : int;
}

let q_stats ~domains ~completed q =
  Mutex.lock q.lock;
  let s =
    {
      domains;
      queue_bound = q.bound;
      queue_depth = Queue.length q.buf;
      busy = q.busy;
      idle = domains - q.busy;
      submitted = q.pushed;
      completed;
      blocked_pushes = q.blocked;
      rejected_pushes = q.rejected;
      max_depth = q.max_depth;
    }
  in
  Mutex.unlock q.lock;
  s

(* Mirror the cumulative counters into a telemetry scope.  Counters are
   monotonic on the scope side, so publish once per pool lifetime (the
   same contract as {!Cache.publish}). *)
let publish_stats (s : stats) obs =
  if Obs.enabled obs then begin
    Obs.count obs "ucd.pool.domains" s.domains;
    Obs.count obs "ucd.pool.queue_bound" s.queue_bound;
    Obs.count obs "ucd.pool.submitted" s.submitted;
    Obs.count obs "ucd.pool.completed" s.completed;
    Obs.count obs "ucd.pool.blocked_pushes" s.blocked_pushes;
    Obs.count obs "ucd.pool.rejected_pushes" s.rejected_pushes;
    Obs.count obs "ucd.pool.max_depth" s.max_depth;
    (* sharded-engine worker budget: how much jobs x shards parallelism
       was granted, clipped or denied (see Cm.Shard.Pool) *)
    let sh = Cm.Shard.Pool.stats () in
    Obs.count obs "ucd.pool.shard_limit" sh.Cm.Shard.Pool.limit;
    Obs.count obs "ucd.pool.shard_workers" sh.Cm.Shard.Pool.workers;
    Obs.count obs "ucd.pool.shard_borrows" sh.Cm.Shard.Pool.borrows;
    Obs.count obs "ucd.pool.shard_spawns" sh.Cm.Shard.Pool.spawns;
    Obs.count obs "ucd.pool.shard_capped" sh.Cm.Shard.Pool.capped;
    Obs.count obs "ucd.pool.shard_denied" sh.Cm.Shard.Pool.denied
  end

let stats_fields (s : stats) =
  let sh = Cm.Shard.Pool.stats () in
  [
    ("domains", Obs.Json.Int s.domains);
    ("queue_bound", Obs.Json.Int s.queue_bound);
    ("queue_depth", Obs.Json.Int s.queue_depth);
    ("busy", Obs.Json.Int s.busy);
    ("idle", Obs.Json.Int s.idle);
    ("submitted", Obs.Json.Int s.submitted);
    ("completed", Obs.Json.Int s.completed);
    ("blocked_pushes", Obs.Json.Int s.blocked_pushes);
    ("rejected_pushes", Obs.Json.Int s.rejected_pushes);
    ("max_depth", Obs.Json.Int s.max_depth);
    ("shard_limit", Obs.Json.Int sh.Cm.Shard.Pool.limit);
    ("shard_workers", Obs.Json.Int sh.Cm.Shard.Pool.workers);
    ("shard_borrows", Obs.Json.Int sh.Cm.Shard.Pool.borrows);
    ("shard_spawns", Obs.Json.Int sh.Cm.Shard.Pool.spawns);
    ("shard_capped", Obs.Json.Int sh.Cm.Shard.Pool.capped);
    ("shard_denied", Obs.Json.Int sh.Cm.Shard.Pool.denied);
  ]

(* Oversubscription guard: with [used] pool domains busy running jobs,
   sharded machines may only spawn workers into what is left of the
   host, so jobs x shards parallelism is capped at roughly the core
   count (plus the pool domains themselves).  Borrows beyond the budget
   run inline — same results, reported via the shard_capped /
   shard_denied counters above. *)
let cap_shard_budget ~used =
  Cm.Shard.Pool.set_limit
    (max 0 (Domain.recommended_domain_count () - 1 - used))

(* ---- one-shot batch map ---- *)

let map ?domains ?queue_bound ?(obs = Obs.null) f items =
  let n = List.length items in
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n = 0 then []
  else if domains = 1 then
    (* degenerate case: no domains spawned, same isolation contract *)
    List.map (fun x -> try Ok (f x) with exn -> Error exn) items
  else begin
    let queue = q_create (match queue_bound with
      | Some b -> max 1 b
      | None -> 4 * domains)
    in
    let results =
      Array.make n (Error (Failure "ucd: job never ran") : ('b, exn) result)
    in
    let completed = Atomic.make 0 in
    let worker () =
      let rec loop () =
        match q_pop queue with
        | None -> ()
        | Some (i, x) ->
            (* results slots are disjoint per index: no lock needed *)
            results.(i) <- (try Ok (f x) with exn -> Error exn);
            Atomic.incr completed;
            q_task_done queue;
            loop ()
      in
      loop ()
    in
    cap_shard_budget ~used:(min domains n);
    let workers =
      List.init (min domains n) (fun _ -> Domain.spawn worker)
    in
    List.iteri (fun i x -> q_push queue (i, x)) items;
    q_close queue;
    List.iter Domain.join workers;
    cap_shard_budget ~used:0;
    publish_stats
      (q_stats ~domains:(min domains n) ~completed:(Atomic.get completed) queue)
      obs;
    Array.to_list results
  end

(* ---- persistent service pool ---- *)

(* The long-running flavour the daemon sits on: a fixed set of worker
   domains fed task thunks through the same bounded queue, but with a
   non-blocking admission path ([try_submit]) so the caller can reject
   with a typed overloaded reply instead of stalling a client
   connection, plus drain/shutdown for graceful exit. *)

type service = {
  svc_queue : (unit -> unit) queue;
  svc_domains : unit Domain.t list;
  svc_ndomains : int;
  svc_completed : int Atomic.t;
  mutable svc_joined : bool;  (* protects against double shutdown *)
  svc_lock : Mutex.t;
}

type submit_outcome = [ `Accepted | `Overloaded | `Closed ]

let service ?domains ?queue_bound () =
  let ndomains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let queue =
    q_create (match queue_bound with Some b -> max 1 b | None -> 4 * ndomains)
  in
  let completed = Atomic.make 0 in
  let worker () =
    let rec loop () =
      match q_pop queue with
      | None -> ()
      | Some task ->
          (* task isolation: a raising thunk never takes a worker down *)
          (try task () with _ -> ());
          Atomic.incr completed;
          q_task_done queue;
          loop ()
    in
    loop ()
  in
  cap_shard_budget ~used:ndomains;
  {
    svc_queue = queue;
    svc_domains = List.init ndomains (fun _ -> Domain.spawn worker);
    svc_ndomains = ndomains;
    svc_completed = completed;
    svc_joined = false;
    svc_lock = Mutex.create ();
  }

let try_submit svc task = q_try_push svc.svc_queue task

(* Blocking admission, used by journal recovery at startup: the replay
   may requeue more jobs than the queue bound, and rejecting them would
   lose accepted work.  Waits for room; [false] only once closed. *)
let submit svc task =
  let q = svc.svc_queue in
  Mutex.lock q.lock;
  if Queue.length q.buf >= q.bound && not q.closed then
    q.blocked <- q.blocked + 1;
  while Queue.length q.buf >= q.bound && not q.closed do
    Condition.wait q.not_full q.lock
  done;
  let accepted =
    if q.closed then false
    else begin
      q_accept_locked q task;
      true
    end
  in
  Mutex.unlock q.lock;
  accepted

let service_stats svc =
  q_stats ~domains:svc.svc_ndomains ~completed:(Atomic.get svc.svc_completed)
    svc.svc_queue

let close svc = q_close svc.svc_queue

(* Wait until the queue is empty and every worker idle; Condition has no
   timed wait, so the deadline is enforced by a helper timer the waiters
   cannot miss (close/task_done broadcast on the relevant conditions and
   drain re-checks on every wakeup, with a coarse periodic broadcast so
   a timeout is noticed within [poll] seconds). *)
let drain ?(timeout = infinity) ?(poll = 0.05) svc =
  let q = svc.svc_queue in
  let deadline =
    if timeout = infinity then infinity else Unix.gettimeofday () +. timeout
  in
  let give_up = ref false in
  let ticker =
    if deadline = infinity then None
    else
      Some
        (Thread.create
           (fun () ->
             let rec tick () =
               let idle_now =
                 Mutex.lock q.lock;
                 let v = q.busy = 0 && Queue.is_empty q.buf in
                 Mutex.unlock q.lock;
                 v
               in
               if idle_now then ()
               else if Unix.gettimeofday () >= deadline then begin
                 Mutex.lock q.lock;
                 give_up := true;
                 Condition.broadcast q.empty_and_idle;
                 Mutex.unlock q.lock
               end
               else begin
                 Thread.delay poll;
                 tick ()
               end
             in
             tick ())
           ())
  in
  Mutex.lock q.lock;
  while (q.busy > 0 || not (Queue.is_empty q.buf)) && not !give_up do
    Condition.wait q.empty_and_idle q.lock
  done;
  let drained = q.busy = 0 && Queue.is_empty q.buf in
  Mutex.unlock q.lock;
  Option.iter Thread.join ticker;
  drained

let shutdown svc =
  close svc;
  Mutex.lock svc.svc_lock;
  let join_now = not svc.svc_joined in
  svc.svc_joined <- true;
  Mutex.unlock svc.svc_lock;
  if join_now then begin
    List.iter Domain.join svc.svc_domains;
    cap_shard_budget ~used:0
  end

let publish svc obs = publish_stats (service_stats svc) obs
