let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* ---- bounded blocking queue ---- *)

type 'a queue = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  buf : 'a Queue.t;
  bound : int;
  mutable closed : bool;
}

let q_create bound =
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    buf = Queue.create ();
    bound;
    closed = false;
  }

let q_push q x =
  Mutex.lock q.lock;
  while Queue.length q.buf >= q.bound do
    Condition.wait q.not_full q.lock
  done;
  Queue.push x q.buf;
  Condition.signal q.not_empty;
  Mutex.unlock q.lock

let q_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.not_empty;
  Mutex.unlock q.lock

(* None once the queue is closed and drained *)
let q_pop q =
  Mutex.lock q.lock;
  let rec wait () =
    match Queue.take_opt q.buf with
    | Some x ->
        Condition.signal q.not_full;
        Mutex.unlock q.lock;
        Some x
    | None ->
        if q.closed then begin
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.not_empty q.lock;
          wait ()
        end
  in
  wait ()

(* ---- the pool ---- *)

let map ?domains ?queue_bound f items =
  let n = List.length items in
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if n = 0 then []
  else if domains = 1 then
    (* degenerate case: no domains spawned, same isolation contract *)
    List.map (fun x -> try Ok (f x) with exn -> Error exn) items
  else begin
    let queue = q_create (match queue_bound with
      | Some b -> max 1 b
      | None -> 4 * domains)
    in
    let results =
      Array.make n (Error (Failure "ucd: job never ran") : ('b, exn) result)
    in
    let worker () =
      let rec loop () =
        match q_pop queue with
        | None -> ()
        | Some (i, x) ->
            (* results slots are disjoint per index: no lock needed *)
            results.(i) <- (try Ok (f x) with exn -> Error exn);
            loop ()
      in
      loop ()
    in
    let workers =
      List.init (min domains n) (fun _ -> Domain.spawn worker)
    in
    List.iteri (fun i x -> q_push queue (i, x)) items;
    q_close queue;
    List.iter Domain.join workers;
    Array.to_list results
  end
