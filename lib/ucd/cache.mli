(** Content-addressed artifact cache for the batch service.

    Three layers, each with hit/miss counters:
    - parsed ASTs, keyed by source digest (in-memory);
    - lowered Paris IR, keyed by (source digest, options) (in-memory);
    - full run results, keyed by the job digest (in-memory, and persisted
      to [dir] when one is given, so a second batch over the same jobs is
      served entirely from disk).

    All operations are thread-safe; one cache is shared by every domain
    of a {!Pool}.  Timed-out results must not be stored (wall-clock
    outcomes are not content); {!Runner} enforces this.

    Disk artifacts are checksummed on write; a truncated or corrupt
    artifact is quarantined to [<digest>.corrupt] (counted in
    {!stats.corruptions}) and treated as a miss, so a damaged cache
    never aborts a sweep.  Write failures are counted and warned about
    once, then the cache degrades to memory-only for those entries. *)

type t

type stats = {
  ast_hits : int;
  ast_misses : int;
  ir_hits : int;
  ir_misses : int;
  run_hits : int;
  run_misses : int;
  corruptions : int;  (** damaged artifacts quarantined to [.corrupt] *)
  write_failures : int;  (** disk writes that could not complete *)
  native_hits : int;  (** compiled-native [.cmxs] blobs served from disk *)
  native_misses : int;  (** [.cmxs] lookups that missed (then rebuilt) *)
  native_codegen_ms : float;  (** total native source-emission ms *)
  native_build_ms : float;  (** total [ocamlopt]+[Dynlink] ms *)
}

(** [create ?dir ()] makes a cache; with [dir], run results are also
    written to and read from [dir] (created if missing), and the cache
    installs itself as {!Cm.Codegen}'s persistent [.cmxs] store (the
    hook is process-global: the most recently created dir-backed cache
    serves it), so native code is content-addressed and shared across
    processes alongside run results — same checksummed container, same
    [<digest>.corrupt] quarantine path. *)
val create : ?dir:string -> unit -> t

(** [memo_ast t ~source_digest f] returns the cached AST or computes,
    stores and returns [f ()]. *)
val memo_ast :
  t -> source_digest:string -> (unit -> Uc.Ast.program) -> Uc.Ast.program

(** [memo_ir t ~source_digest ~options_key f] likewise for lowered IR. *)
val memo_ir :
  t ->
  source_digest:string ->
  options_key:string ->
  (unit -> Uc.Codegen.compiled) ->
  Uc.Codegen.compiled

(** Look up a finished run by job digest (memory first, then disk). *)
val find_run : t -> string -> Report.result option

(** Record a finished run under its job digest. *)
val store_run : t -> string -> Report.result -> unit

(** Install a chaos hook consulted once per disk write; returning
    [true] makes that write fail as if the disk were full, exercised
    through the ordinary write-failure counting/warning path.  The
    in-memory entry is still stored.  Used by the serve daemon's
    [--chaos disk=N] injection. *)
val set_write_fault : t -> (unit -> bool) -> unit

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [publish t obs] mirrors the cumulative {!stats} counters into [obs]
    as ["ucd.cache."]-prefixed counts ([ast_hits], [ir_misses],
    [corruptions], …).  Call once after a batch; the scope's counters
    are monotonic, so publishing twice doubles them.  A no-op on a
    disabled scope. *)
val publish : t -> Obs.t -> unit
