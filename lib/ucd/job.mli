(** The unit of work for the batch service: one UC source program plus
    everything that determines its observable result.

    A job's {!digest} is content-addressed: it depends only on the source
    text, the compile options, the seed, the fuel bound and the fault
    spec — the inputs that determine the simulation outcome.  The
    wall-clock [deadline] and the [retries] budget are execution policy,
    not content, so they do not participate in the digest (timed-out
    results are never cached, and neither are fault-bearing runs, whose
    outcome depends on the retry policy). *)

type t = {
  name : string;  (** display name; not part of the digest *)
  source : string;  (** complete UC source text *)
  options : Uc.Codegen.options;
  seed : int;
  fuel : int option;  (** instruction bound; [None] = machine default *)
  deadline : float option;  (** wall-clock seconds allowed for the run *)
  faults : Cm.Fault.spec option;  (** fault plan to run under (content) *)
  retries : int option;  (** extra attempts after a transient fault;
                             [None] = the runner policy's default *)
  engine : Cm.Machine.engine;
      (** execution engine (content: engines are observably identical,
          but wall-clock and report metadata are not, so results from
          different engines never share a cache entry) *)
  tune : bool;
      (** auto-tune the data layout ({!Uc.Layoutsel}) before lowering
          (content: the synthesized map section changes the emitted
          Paris program, though never the observable output) *)
}

val make :
  ?options:Uc.Codegen.options ->
  ?seed:int ->
  ?fuel:int ->
  ?deadline:float ->
  ?faults:Cm.Fault.spec ->
  ?retries:int ->
  ?engine:Cm.Machine.engine ->
  ?tune:bool ->
  name:string ->
  source:string ->
  unit ->
  t

(** Canonical engine rendering used in digests, reports and the CLI:
    ["fast"], ["reference"] or ["sharded:N"]. *)
val engine_string : Cm.Machine.engine -> string

(** The engine names the CLI accepts, in display order — the single
    source for both [--help] and the validator. *)
val engine_names : string list

(** Parse a CLI/manifest engine name ([shards] applies to ["sharded"]).
    Errors name the valid engines. *)
val engine_of_name :
  shards:int -> string -> (Cm.Machine.engine, string) result

(** The canonical field list the digest is computed from.  Keys are
    sorted before hashing, so the digest is independent of the order in
    which fields are assembled. *)
val fields : t -> (string * string) list

(** [digest_of_fields kvs] hashes a canonical rendering of [kvs] sorted
    by key; permutations of the same bindings give the same digest. *)
val digest_of_fields : (string * string) list -> string

(** Hex digest identifying the job's content. *)
val digest : t -> string

(** Render the option record as stable one-token-per-flag text
    (["news procopt maps cse"] subset), used in digests and reports. *)
val options_summary : Uc.Codegen.options -> string
