(* Seeded service-level chaos.  See chaos.mli for the grammar. *)

type spec = {
  seed : int;
  horizon : int;
  n_resets : int;
  n_frames : int;
  n_slow : int;
  n_disk : int;
  n_crash : int;
}

(* A category is a set of drawn serials plus a trigger counter: the
   k-th consultation fires iff k is in the set.  IntSet membership is
   O(log n) and the counter is the only mutable state, so concurrent
   writers/readers only contend on one mutex per category. *)
module IntSet = Set.Make (Int)

type category = {
  lock : Mutex.t;
  serials : IntSet.t;
  mutable next : int;
  mutable hits : int;
}

type t = {
  origin : string;
  resets : category;
  frames : category;
  slow : category;
  disk : category;
  crash : category;
  slow_delays : (int, float) Hashtbl.t;  (* serial -> stall seconds *)
}

let empty =
  {
    seed = 1;
    horizon = 1000;
    n_resets = 0;
    n_frames = 0;
    n_slow = 0;
    n_disk = 0;
    n_crash = 0;
  }

let is_empty s =
  s.n_resets = 0 && s.n_frames = 0 && s.n_slow = 0 && s.n_disk = 0
  && s.n_crash = 0

let spec_string s =
  let parts = ref [] in
  let add p = parts := p :: !parts in
  if not (is_empty s) then begin
    add (Printf.sprintf "seed=%d" s.seed);
    add (Printf.sprintf "horizon=%d" s.horizon)
  end;
  if s.n_resets > 0 then add (Printf.sprintf "resets=%d" s.n_resets);
  if s.n_frames > 0 then add (Printf.sprintf "frames=%d" s.n_frames);
  if s.n_slow > 0 then add (Printf.sprintf "slow=%d" s.n_slow);
  if s.n_disk > 0 then add (Printf.sprintf "disk=%d" s.n_disk);
  if s.n_crash > 0 then add (Printf.sprintf "crash=%d" s.n_crash);
  String.concat ";" (List.rev !parts)

let parse_exn text =
  let spec = ref empty in
  let token tok =
    match String.index_opt tok '=' with
    | None -> failwith (Printf.sprintf "bad chaos token %S" tok)
    | Some i ->
        let key = String.sub tok 0 i in
        let v =
          match
            int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
          with
          | Some n -> n
          | None ->
              failwith
                (Printf.sprintf "bad chaos token %S: value is not an integer"
                   tok)
        in
        let count what n =
          if n < 0 then
            failwith
              (Printf.sprintf "bad chaos token %S: negative %s count" tok what);
          n
        in
        (match key with
        | "seed" -> spec := { !spec with seed = v land 0x3FFFFFFF }
        | "horizon" ->
            if v < 1 then
              failwith
                (Printf.sprintf "bad chaos token %S: horizon must be >= 1" tok);
            spec := { !spec with horizon = v }
        | "resets" -> spec := { !spec with n_resets = count "resets" v }
        | "frames" -> spec := { !spec with n_frames = count "frames" v }
        | "slow" -> spec := { !spec with n_slow = count "slow" v }
        | "disk" -> spec := { !spec with n_disk = count "disk" v }
        | "crash" -> spec := { !spec with n_crash = count "crash" v }
        | _ -> failwith (Printf.sprintf "bad chaos token %S: unknown key %S" tok key))
  in
  String.split_on_char ';' text
  |> List.iter (fun part ->
         String.split_on_char ',' part
         |> List.iter (fun tok ->
                let tok = String.trim tok in
                if tok <> "" then token tok));
  !spec

let parse text = try Ok (parse_exn text) with Failure msg -> Error msg

(* The machine's LCG recurrence (cf. Cm.Fault), so chaos schedules are
   as deterministic as the fault plans they mirror. *)
let lcg state = (state * 1103515245 + 12345) land 0x3FFFFFFF

let instantiate s =
  let state = ref (lcg ((s.seed * 7 + 3) land 0x3FFFFFFF)) in
  let draw () =
    state := lcg !state;
    !state
  in
  let category n =
    let serials = ref IntSet.empty in
    for _ = 1 to n do
      serials := IntSet.add (draw () mod s.horizon) !serials
    done;
    { lock = Mutex.create (); serials = !serials; next = 0; hits = 0 }
  in
  let resets = category s.n_resets in
  let frames = category s.n_frames in
  let slow = category s.n_slow in
  let slow_delays = Hashtbl.create 8 in
  IntSet.iter
    (fun serial ->
      Hashtbl.replace slow_delays serial
        (0.01 +. (float_of_int (draw () mod 1000) /. 10_000.)))
    slow.serials;
  let disk = category s.n_disk in
  let crash = category s.n_crash in
  { origin = spec_string s; resets; frames; slow; disk; crash; slow_delays }

let canonical t = t.origin

let consult cat =
  Mutex.lock cat.lock;
  let serial = cat.next in
  cat.next <- serial + 1;
  let hit = IntSet.mem serial cat.serials in
  if hit then cat.hits <- cat.hits + 1;
  Mutex.unlock cat.lock;
  (serial, hit)

let fire obs name = if Obs.enabled obs then Obs.count obs ("ucd.chaos." ^ name) 1

let fires_reset t ~obs =
  let _, hit = consult t.resets in
  if hit then fire obs "resets";
  hit

let fires_frame t ~obs =
  let _, hit = consult t.frames in
  if hit then fire obs "frames";
  hit

let fires_slow t ~obs =
  let serial, hit = consult t.slow in
  if hit then begin
    fire obs "slow";
    Some (try Hashtbl.find t.slow_delays serial with Not_found -> 0.01)
  end
  else None

let fires_disk t ~obs =
  let _, hit = consult t.disk in
  if hit then fire obs "disk";
  hit

let fires_crash t ~obs =
  let _, hit = consult t.crash in
  if hit then fire obs "crash";
  hit

let fired t =
  let get name cat =
    Mutex.lock cat.lock;
    let h = cat.hits in
    Mutex.unlock cat.lock;
    (name, h)
  in
  [
    get "crash" t.crash;
    get "disk" t.disk;
    get "frames" t.frames;
    get "resets" t.resets;
    get "slow" t.slow;
  ]
