(* Per-connection sessions for the serve daemon.

   Each accepted connection gets one session: a tenant identity, a
   priority class, admission counters, and an outbox — a bounded
   Obs.Stream drained by the connection's writer thread.  Protocol
   replies and report rows use the blocking lane (backpressure lands on
   the producer, typically a pool worker finishing a job for a slow
   client); trace events use the droppable lane (a slow subscriber
   loses events, counted, never progress).

   Tenant quotas bound *in-flight* jobs (queued or running) per tenant
   across all of that tenant's sessions, so one tenant cannot occupy
   the whole queue no matter how many connections it opens. *)

type t = {
  id : int;
  tenant : string;
  priority : Proto.priority;
  privileged : bool;
  outbox : Obs.Stream.t;
  lock : Mutex.t;
  mutable trace : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable in_flight : int;
  mutable closed : bool;
}

type registry = {
  reg_lock : Mutex.t;
  sessions : (int, t) Hashtbl.t;
  tenant_in_flight : (string, int ref) Hashtbl.t;
  quotas : (string * int) list;
  default_quota : int option;
  mutable next_id : int;
  mutable lifetime_sessions : int;
}

let registry ?(quotas = []) ?default_quota () =
  {
    reg_lock = Mutex.create ();
    sessions = Hashtbl.create 16;
    tenant_in_flight = Hashtbl.create 16;
    quotas;
    default_quota;
    next_id = 1;
    lifetime_sessions = 0;
  }

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let attach ?(privileged = true) reg ~tenant ~priority ~outbox_capacity =
  locked reg.reg_lock (fun () ->
      let id = reg.next_id in
      reg.next_id <- id + 1;
      reg.lifetime_sessions <- reg.lifetime_sessions + 1;
      let s =
        {
          id;
          tenant;
          priority;
          privileged;
          outbox = Obs.Stream.create ~capacity:outbox_capacity ();
          lock = Mutex.create ();
          trace = false;
          submitted = 0;
          completed = 0;
          rejected = 0;
          in_flight = 0;
          closed = false;
        }
      in
      Hashtbl.replace reg.sessions id s;
      s)

let detach reg s =
  locked reg.reg_lock (fun () -> Hashtbl.remove reg.sessions s.id);
  locked s.lock (fun () -> s.closed <- true);
  Obs.Stream.close s.outbox

let quota_of reg tenant =
  match List.assoc_opt tenant reg.quotas with
  | Some q -> Some q
  | None -> reg.default_quota

(* Tenant-quota admission.  On success the tenant's and the session's
   in-flight counts are already incremented — pair every [Ok] with a
   {!finished} once the job leaves the system (done, cancelled, or
   failed to enqueue). *)
let admit reg s =
  locked reg.reg_lock (fun () ->
      let counter =
        match Hashtbl.find_opt reg.tenant_in_flight s.tenant with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add reg.tenant_in_flight s.tenant r;
            r
      in
      match quota_of reg s.tenant with
      | Some q when !counter >= q ->
          Error
            (Printf.sprintf "tenant %s has %d job(s) in flight (quota %d)"
               s.tenant !counter q)
      | _ ->
          incr counter;
          locked s.lock (fun () ->
              s.in_flight <- s.in_flight + 1;
              s.submitted <- s.submitted + 1);
          Ok ())

(* A previously admitted job left the system. *)
let finished reg s ~completed =
  locked reg.reg_lock (fun () ->
      match Hashtbl.find_opt reg.tenant_in_flight s.tenant with
      | Some r -> if !r > 0 then decr r
      | None -> ());
  locked s.lock (fun () ->
      s.in_flight <- max 0 (s.in_flight - 1);
      if completed then s.completed <- s.completed + 1)

let note_rejected s = locked s.lock (fun () -> s.rejected <- s.rejected + 1)
let set_trace s enable = locked s.lock (fun () -> s.trace <- enable)
let trace_enabled s = locked s.lock (fun () -> s.trace)

(* ---- outbox ---- *)

let send s msg = Obs.Stream.push s.outbox (Proto.server_line msg)

(* droppable lane: trace events for [job], only when subscribed *)
let send_trace s ~job event_json =
  trace_enabled s
  && Obs.Stream.offer s.outbox
       (Proto.server_line (Proto.Trace_event { job; event = event_json }))

let outbox_pop s = Obs.Stream.pop s.outbox
let close_outbox s = Obs.Stream.close s.outbox

(* ---- introspection ---- *)

let all reg =
  locked reg.reg_lock (fun () ->
      Hashtbl.fold (fun _ s acc -> s :: acc) reg.sessions [])

let session_fields s =
  locked s.lock (fun () ->
      [
        ("session", Jsonu.Int s.id);
        ("tenant", Jsonu.Str s.tenant);
        ("priority", Jsonu.Str (Proto.priority_string s.priority));
        ("privileged", Jsonu.Bool s.privileged);
        ("submitted", Jsonu.Int s.submitted);
        ("completed", Jsonu.Int s.completed);
        ("rejected", Jsonu.Int s.rejected);
        ("in_flight", Jsonu.Int s.in_flight);
        ("trace", Jsonu.Bool s.trace);
        ("trace_dropped", Jsonu.Int (Obs.Stream.dropped s.outbox));
      ])

(* tenant -> (in-flight now, quota if any), sorted by tenant; the
   server_status reply's per-tenant usage table *)
let tenant_usage reg =
  locked reg.reg_lock (fun () ->
      Hashtbl.fold
        (fun tenant r acc -> (tenant, !r, quota_of reg tenant) :: acc)
        reg.tenant_in_flight []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b))

let registry_fields reg =
  let sessions = all reg in
  let lifetime =
    locked reg.reg_lock (fun () -> reg.lifetime_sessions)
  in
  [
    ("connected", Jsonu.Int (List.length sessions));
    ("lifetime", Jsonu.Int lifetime);
    ( "sessions",
      Jsonu.List
        (List.map
           (fun s -> Jsonu.Obj (session_fields s))
           (List.sort (fun a b -> compare a.id b.id) sessions)) );
  ]
