(** Executes jobs against a shared cache, one result per job.

    Fault isolation: a job whose front end raises [Uc.Loc.Error], whose
    machine raises [Cm.Machine.Error] (including fuel exhaustion), or
    that fails in any other way is reported as [Report.Failed]; the
    exception never escapes.

    Robustness policy (the {!policy} record):
    - execution proceeds in {e fuel slices} and the wall-clock deadline
      is enforced {e between} slices, so a slow job yields
      [Report.Timeout] within one slice of its limit instead of holding
      a pool worker until it finishes (timeouts are never cached);
    - a run that dies with a transient [Cm.Machine.Fault] is retried up
      to [retries] extra times (per-job [Job.retries] overrides) with
      capped exponential backoff and deterministic seeded jitter,
      optionally resuming from the last checkpointed slice; the attempt
      count and fault trace land in the report row;
    - when every attempt faults, the job is quarantined as
      [Report.Faulted] — it never takes the pool down.

    Fault-bearing jobs ([Job.faults <> None]) are computed fresh every
    time: their outcome depends on the retry policy, which is not
    content, so caching them would let policy leak into cached results. *)

type policy = {
  retries : int;  (** default extra attempts after a transient fault *)
  fuel_slice : int;  (** instructions per slice (deadline granularity) *)
  resume : bool;  (** resume retries from the last checkpoint *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_cap : float;  (** upper bound on any retry delay, seconds *)
}

(** retries 0, fuel_slice 100k, resume on, backoff 10ms doubling capped
    at 250ms. *)
val default_policy : policy

(** Run one job: cache lookup, else compile (via the staged
    {!Uc.Compile} API, memoizing AST and IR) and execute under the
    policy.

    [obs] (default {!Obs.null}) receives the job lifecycle: a ["job"]
    span around the whole unit of work, ["job.cache"] (hit/miss/bypass),
    ["job.attempt"], ["job.retry"] and ["job.done"] points, the
    ["ucd.slices"]/["ucd.retries"] counters, and — via
    {!Cm.Machine.publish} — the machine's ["cm."] statistics.  One scope
    may be shared by every pool worker; telemetry never changes results
    (the report row, including its [metrics], is identical with a null
    scope).

    [ckpt] seeds the resume point with a previously captured
    {!Uc.Compile.checkpoint} blob (journal recovery): the first attempt
    restores from it, falling back to a fresh start when the blob's
    program digest no longer matches (source changed across the
    restart).  [on_checkpoint] receives every per-slice checkpoint blob
    as it is taken — supplying it forces per-slice checkpointing even
    for fault-free jobs, which is how the serve daemon journals resume
    points.  Checkpoint-interrupt-resume yields byte-identical rows
    (PR 3 invariant), so neither parameter can change a result. *)
val run_job :
  ?policy:policy ->
  ?obs:Obs.t ->
  ?ckpt:string ->
  ?on_checkpoint:(string -> unit) ->
  cache:Cache.t ->
  Job.t ->
  Report.result

(** The [Report.Failed] row for a job whose execution raised something
    {!run_job} does not absorb ([Out_of_memory], [Stack_overflow] …).
    {!run_jobs} and the serve daemon use it so a crashing job still
    yields a result — and releases its admission slot — instead of
    vanishing. *)
val crash_result : Job.t -> exn -> Report.result

(** Run a batch on a domain pool ({!Pool.map}); results are returned in
    submission order.  [obs] is shared by all workers. *)
val run_jobs :
  ?domains:int ->
  ?queue_bound:int ->
  ?policy:policy ->
  ?obs:Obs.t ->
  cache:Cache.t ->
  Job.t list ->
  Report.result list

(** The whole built-in corpus ({!Uc_programs.Programs.all_named}) as
    jobs. *)
val corpus_jobs :
  ?options:Uc.Codegen.options ->
  ?seed:int ->
  ?fuel:int ->
  ?deadline:float ->
  ?faults:Cm.Fault.spec ->
  ?retries:int ->
  ?engine:Cm.Machine.engine ->
  ?tune:bool ->
  unit ->
  Job.t list
