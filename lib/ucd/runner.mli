(** Executes jobs against a shared cache, one result per job.

    Fault isolation: a job whose front end raises [Uc.Loc.Error], whose
    machine raises [Cm.Machine.Error] (including fuel exhaustion), or
    that fails in any other way is reported as [Report.Failed]; the
    exception never escapes.  A job that finishes after its wall-clock
    deadline is reported as [Report.Timeout] and is not cached. *)

(** Run one job: cache lookup, else compile (via the staged
    {!Uc.Compile} API, memoizing AST and IR) and execute. *)
val run_job : cache:Cache.t -> Job.t -> Report.result

(** Run a batch on a domain pool ({!Pool.map}); results are returned in
    submission order. *)
val run_jobs :
  ?domains:int -> ?queue_bound:int -> cache:Cache.t -> Job.t list ->
  Report.result list

(** The whole built-in corpus ({!Uc_programs.Programs.all_named}) as
    jobs. *)
val corpus_jobs :
  ?options:Uc.Codegen.options -> ?seed:int -> ?fuel:int -> ?deadline:float ->
  unit -> Job.t list
