(* Client side of the serve protocol: connect, handshake, then a thin
   send/recv surface over Proto.  Used by `ucc submit`, the loopback
   tests, and the bench load generator.  Blocking and single-threaded
   by design — one request pipeline per connection; callers wanting
   concurrency open more connections. *)

type addr = Unix_path of string | Tcp of string * int

type t = {
  fd : Unix.file_descr;
  reader : Proto.reader;
  session : int;  (* session id granted by welcome *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let send t msg =
  match write_all t.fd (Proto.client_line msg ^ "\n") with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  | exception _ -> Error "send failed"

let recv t =
  match Proto.read_frame t.reader with
  | `Eof -> Error "connection closed by server"
  | `Oversized -> Error "oversized frame from server"
  | `Frame line -> (
      match Proto.server_of_line line with
      | Ok msg -> Ok msg
      | Error msg -> Error (Printf.sprintf "bad server frame: %s" msg))

let close t = try Unix.close t.fd with _ -> ()

let connect ?(tenant = "anonymous") ?(priority = Proto.Normal)
    ?max_frame addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let sock () =
    match addr with
    | Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let ip =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
  in
  match sock () with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
  | fd -> (
      let t0 = { fd; reader = Proto.reader ?max_frame fd; session = 0 } in
      let hello =
        Proto.Hello { version = Proto.version; tenant; priority }
      in
      match send t0 hello with
      | Error e ->
          close t0;
          Error e
      | Ok () -> (
          match recv t0 with
          | Ok (Proto.Welcome { version = _; session; server = _ }) ->
              Ok { t0 with session }
          | Ok (Proto.Error { code; msg }) ->
              close t0;
              Error
                (Printf.sprintf "server rejected hello: %s: %s"
                   (Proto.code_string code) msg)
          | Ok _ ->
              close t0;
              Error "server did not answer hello with welcome"
          | Error e ->
              close t0;
              Error e))

let session t = t.session

(* Capped exponential backoff with deterministic seeded jitter
   (Runner.backoff_delay's recipe): attempt [k] sleeps
   [min cap (base * 2^k)] scaled into [0.5, 1.5), so a fleet of
   identical clients hammering a restarting daemon spreads out,
   reproducibly. *)
let retry_delay ~base ~cap ~seed ~attempt =
  if base <= 0. then 0.
  else begin
    let capped = Float.min cap (base *. (2. ** float_of_int attempt)) in
    let h = ((seed * 1103515245) + 12345 + (attempt * 40503)) land 0x3FFFFFFF in
    capped *. (0.5 +. (float_of_int (h land 0xFFFF) /. 65536.))
  end

let connect_retry ?tenant ?priority ?max_frame ?(attempts = 8)
    ?(backoff_base = 0.05) ?(backoff_cap = 1.0) ?(seed = 1) addr =
  let rec go k last =
    match connect ?tenant ?priority ?max_frame addr with
    | Ok t -> Ok t
    | Error e ->
        let k = k + 1 in
        if k >= attempts then
          Error
            (Printf.sprintf "%s (after %d attempt%s)" e attempts
               (if attempts = 1 then "" else "s"))
        else begin
          let d =
            retry_delay ~base:backoff_base ~cap:backoff_cap ~seed
              ~attempt:(k - 1)
          in
          if d > 0. then Unix.sleepf d;
          go k e
        end
  in
  go 0 "never tried"

(* Wait for a reply satisfying [want], handing every other frame to
   [other] (reports and trace events keep streaming while we wait for a
   stats or drain reply).  An [error] frame is the server's answer to
   the pending request (the pipeline is single-threaded), so it ends
   the wait instead of looping forever. *)
let recv_until t ~other want =
  let rec loop () =
    match recv t with
    | Error e -> Error e
    | Ok (Proto.Error { code; msg }) ->
        Error (Printf.sprintf "%s: %s" (Proto.code_string code) msg)
    | Ok msg -> (
        match want msg with
        | Some v -> Ok v
        | None ->
            other msg;
            loop ())
  in
  loop ()

let stats ?(other = fun _ -> ()) t =
  match send t Proto.Stats with
  | Error e -> Error e
  | Ok () ->
      recv_until t ~other (function
        | Proto.Stats_reply j -> Some j
        | _ -> None)

let drain ?(other = fun _ -> ()) t =
  match send t Proto.Drain with
  | Error e -> Error e
  | Ok () ->
      recv_until t ~other (function
        | Proto.Draining { in_flight } -> Some in_flight
        | _ -> None)

let status_digest ?(other = fun _ -> ()) t digest =
  match send t (Proto.Status_digest digest) with
  | Error e -> Error e
  | Ok () ->
      recv_until t ~other (function
        | Proto.Digest_reply { digest = d; state; row } when d = digest ->
            Some (state, row)
        | _ -> None)

let server_status ?(other = fun _ -> ()) t =
  match send t Proto.Server_status with
  | Error e -> Error e
  | Ok () ->
      recv_until t ~other (function
        | Proto.Server_status_reply j -> Some j
        | _ -> None)

let set_trace ?(other = fun _ -> ()) t enable =
  match send t (Proto.Trace enable) with
  | Error e -> Error e
  | Ok () ->
      recv_until t ~other (function
        | Proto.Trace_reply on -> Some on
        | _ -> None)
