(** Per-connection sessions for the serve daemon.

    Each accepted connection gets one session: a tenant identity, a
    priority class, admission counters, and an outbox — a bounded
    {!Obs.Stream} drained by the connection's writer thread.  Protocol
    replies and report rows use the blocking lane (backpressure lands
    on the producer); trace events use the droppable lane (a slow
    subscriber loses events, counted, never progress).

    Tenant quotas bound {e in-flight} jobs (queued or running) per
    tenant across all of that tenant's sessions, so one tenant cannot
    occupy the whole queue no matter how many connections it opens. *)

type t = private {
  id : int;
  tenant : string;
  priority : Proto.priority;
  privileged : bool;  (** may issue operator-only requests ([drain]) *)
  outbox : Obs.Stream.t;
  lock : Mutex.t;
  mutable trace : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable in_flight : int;
  mutable closed : bool;
}

type registry

(** [quotas] maps tenant name to its in-flight bound; [default_quota]
    applies to tenants not listed (default: unlimited). *)
val registry :
  ?quotas:(string * int) list -> ?default_quota:int -> unit -> registry

(** [privileged] (default [true], the trust level of in-process and
    unix-socket callers) gates operator-only requests; the server
    passes [false] for TCP connections. *)
val attach :
  ?privileged:bool ->
  registry ->
  tenant:string ->
  priority:Proto.priority ->
  outbox_capacity:int ->
  t

(** Remove from the registry and close the outbox (the writer thread
    drains what remains, then sees [None]). *)
val detach : registry -> t -> unit

(** Tenant-quota admission.  On [Ok] the tenant's and session's
    in-flight counts are already incremented — pair every [Ok] with a
    {!finished} once the job leaves the system (done, cancelled, or
    failed to enqueue). *)
val admit : registry -> t -> (unit, string) result

val finished : registry -> t -> completed:bool -> unit

val note_rejected : t -> unit
val set_trace : t -> bool -> unit
val trace_enabled : t -> bool

(** Blocking enqueue of a protocol frame; [false] once the outbox is
    closed (client gone — the caller just drops the message). *)
val send : t -> Proto.server_msg -> bool

(** Droppable enqueue of one trace event for [job]; [false] when not
    subscribed, dropped (outbox full) or closed. *)
val send_trace : t -> job:int -> Jsonu.t -> bool

(** Writer-thread side: next frame line, or [None] once closed and
    drained. *)
val outbox_pop : t -> string option

val close_outbox : t -> unit

val all : registry -> t list
val session_fields : t -> (string * Jsonu.t) list

(** [(tenant, in-flight now, quota if any)] per known tenant, sorted by
    tenant — the [server_status] reply's quota-usage table. *)
val tenant_usage : registry -> (string * int * int option) list

(** For the server's [stats] reply: connected count, lifetime count,
    and per-session rows sorted by id. *)
val registry_fields : registry -> (string * Jsonu.t) list
