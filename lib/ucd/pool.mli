(** A fixed-size domain pool fed through a bounded work queue.

    [map ~domains f items] applies [f] to every item, running up to
    [domains] applications concurrently on OCaml 5 domains, and returns
    the results in submission order.  An [f] that raises is isolated to
    its own slot ([Error exn]); it never takes the pool down.

    The queue is bounded ([queue_bound], default [4 * domains]): the
    submitting thread blocks when the workers fall behind, so a huge
    batch never materializes entirely in memory. *)

val default_domains : unit -> int

val map :
  ?domains:int ->
  ?queue_bound:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) Stdlib.result list
