(** A fixed-size domain pool fed through a bounded work queue, in two
    flavours: the one-shot batch {!map}, and a persistent {!service}
    with a non-blocking admission path for the `ucc serve` daemon.

    Both flavours share the same instrumented queue, so pool health —
    queue depth, busy/idle workers, blocked and rejected pushes, the
    depth high-water mark — is observable either as a {!stats} snapshot
    or mirrored into a telemetry scope as ["ucd.pool."] counters. *)

val default_domains : unit -> int

(** Pool health.  [blocked_pushes] counts blocking submissions that had
    to wait for room (the {!map} path); [rejected_pushes] counts
    non-blocking submissions refused because the queue was full (the
    {!try_submit} admission path).  [submitted] is accepted work over
    the pool's lifetime; [completed] is finished tasks. *)
type stats = {
  domains : int;
  queue_bound : int;
  queue_depth : int;
  busy : int;
  idle : int;
  submitted : int;
  completed : int;
  blocked_pushes : int;
  rejected_pushes : int;
  max_depth : int;
}

(** The stats as JSON object fields, in a stable order (the server's
    [stats] reply and bench rows). *)
val stats_fields : stats -> (string * Obs.Json.t) list

(** Mirror cumulative counters into [obs] as ["ucd.pool."] counts.
    Counters are monotonic on the scope side: publish once per pool
    lifetime (same contract as [Cache.publish]). *)
val publish_stats : stats -> Obs.t -> unit

(** [map ~domains f items] applies [f] to every item, running up to
    [domains] applications concurrently on OCaml 5 domains, and returns
    the results in submission order.  An [f] that raises is isolated to
    its own slot ([Error exn]); it never takes the pool down.

    The queue is bounded ([queue_bound], default [4 * domains]): the
    submitting thread blocks when the workers fall behind, so a huge
    batch never materializes entirely in memory.  [obs] receives the
    pool-health counters after the batch ({!publish_stats}). *)
val map :
  ?domains:int ->
  ?queue_bound:int ->
  ?obs:Obs.t ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) Stdlib.result list

(** {1 Persistent service pool}

    The long-running flavour the daemon sits on: worker domains started
    once, task thunks submitted over time, and an admission path that
    {e rejects} instead of blocking when the queue is full — the caller
    turns [`Overloaded] into a typed wire reply rather than stalling a
    client connection. *)

type service

type submit_outcome = [ `Accepted | `Overloaded | `Closed ]

(** [service ?domains ?queue_bound ()] spawns the workers immediately.
    A task that raises is swallowed (tasks are expected to do their own
    result delivery); it never takes a worker down. *)
val service : ?domains:int -> ?queue_bound:int -> unit -> service

(** Non-blocking admission: [`Overloaded] when the queue is at its
    bound (counted in [rejected_pushes]), [`Closed] after {!close}. *)
val try_submit : service -> (unit -> unit) -> submit_outcome

(** Blocking admission — waits for queue room instead of rejecting;
    [false] only once the service is closed.  Used by journal recovery,
    where the replay may requeue more jobs than the queue bound and a
    rejection would lose accepted work. *)
val submit : service -> (unit -> unit) -> bool

val service_stats : service -> stats

(** Stop accepting; queued tasks still run. *)
val close : service -> unit

(** [drain ?timeout svc] waits until the queue is empty and every
    worker is idle; [false] if [timeout] (seconds, default infinite)
    expired first.  Callable from any thread; typically after {!close}
    so the drained state is final. *)
val drain : ?timeout:float -> ?poll:float -> service -> bool

(** {!close} then join the worker domains (idempotent). *)
val shutdown : service -> unit

(** {!publish_stats} of the current {!service_stats}. *)
val publish : service -> Obs.t -> unit
