(** The [ucc serve] daemon: a long-running compile-and-run service over
    Unix-domain (and optionally TCP loopback) sockets speaking the
    {!Proto} JSON-lines protocol.

    One accept thread multiplexes the listeners; each connection gets a
    reader thread (frame parsing, dispatch, admission control) and a
    writer thread (drains the session outbox — one writer per socket
    keeps frames whole).  Jobs execute on a {!Pool.service} of worker
    domains through the ordinary {!Runner}, so caching, fault
    quarantine, checkpoint slicing and deadline enforcement apply to
    served jobs unchanged.

    Admission happens before the queue and never blocks a client:
    draining → [shutting_down], tenant over in-flight quota → [quota],
    low-priority past the 3/4 queue watermark → [overloaded], queue
    full → [overloaded] (non-blocking {!Pool.try_submit}).

    The [drain] frame is operator-only: honoured on unix-socket
    connections (gated by the socket path's filesystem permissions),
    answered with a [denied] error over TCP.

    Durability: with a [cache_dir] and [journal:true], every accepted
    job is written ahead to a {!Journal} before its ack; on start the
    journal is replayed, unfinished jobs are requeued (resuming from
    their latest checkpoint blob, with ownerless entries clients
    reattach to by resubmitting the same digest), and [done] jobs whose
    cached report vanished are recomputed.  Resubmitting an in-flight
    digest joins the existing job as a watcher — exactly-once
    client-visible semantics over at-least-once execution.

    Chaos: a seeded {!Chaos} plan injects socket resets, torn frames,
    slow-reader stalls, cache-disk write failures and simulated worker
    crashes, for the crash/soak harnesses; [None] injects nothing and
    costs nothing. *)

type config = {
  socket_path : string option;  (** Unix-domain listener (stale file replaced) *)
  tcp_port : int option;  (** loopback TCP listener *)
  domains : int;  (** pool worker domains *)
  queue_bound : int;  (** pool queue capacity; overflow is rejected *)
  quotas : (string * int) list;  (** tenant → max in-flight jobs *)
  default_quota : int option;  (** quota for unlisted tenants (None = unlimited) *)
  drain_timeout : float;  (** seconds to wait for in-flight jobs on shutdown *)
  flush_timeout : float;
      (** seconds a shutdown waits for connection threads to flush
          their goodbyes before force-disconnecting stalled clients *)
  policy : Runner.policy;
  max_frame : int;  (** inbound frame size bound (bytes) *)
  outbox_capacity : int;  (** per-session outbox frames *)
  recent_results : int;
      (** finished (done/cancelled) outcomes kept for [status] queries;
          older ones are evicted so a long-running daemon's memory
          stays bounded *)
  journal : bool;
      (** write-ahead job journal under the cache dir (no [cache_dir] →
          no journal, silently) *)
  journal_fsync : bool;  (** fsync after every journal record *)
  chaos : Chaos.spec option;  (** seeded service-level fault injection *)
  verbose : bool;  (** log connections/drain progress to stderr *)
}

(** Unix socket ["ucd.sock"], no TCP, 2 domains, queue 16, no quotas,
    30 s drain, 5 s flush, default runner policy, 1 MiB frames, 256
    recent outcomes, journal on (fsync off), no chaos, quiet. *)
val default_config : config

type t

(** Bind the listeners, spawn the pool and the accept thread, return
    immediately.  [obs] is the daemon's own telemetry scope ([ucc serve
    --metrics/--trace]); pool and cache counters are published to it at
    shutdown.  Ignores [SIGPIPE] process-wide (a dead client must not
    kill the daemon).

    @raise Invalid_argument when neither [socket_path] nor [tcp_port]
    is set.
    @raise Unix.Unix_error when a listener cannot bind. *)
val start : ?obs:Obs.t -> ?cache_dir:string -> config -> t

(** Begin graceful shutdown (idempotent; [true] on the first call):
    stop accepting, reject new submissions with [shutting_down], drain
    in-flight jobs bounded by [drain_timeout], flush every session
    outbox, notify clients, then release {!wait}. *)
val request_shutdown : ?reason:string -> t -> bool

(** Block until shutdown completes.  [0] when the drain finished
    cleanly, [1] when the timeout expired with jobs still running. *)
val wait : t -> int

(** {!request_shutdown} + {!wait} + reap the accept thread and the
    pool.  The in-process form used by tests and the bench harness. *)
val stop : ?reason:string -> t -> int

(** The [stats] reply body: server / pool / sessions / cache objects. *)
val stats : t -> Jsonu.t
