(** Structured results and telemetry for batch jobs. *)

type status =
  | Done  (** compiled and ran to [Halt] *)
  | Failed of string  (** front-end or machine error, fuel exhaustion … *)
  | Timeout of float  (** wall-clock deadline exceeded (seconds allowed) *)
  | Faulted of string
      (** quarantined: every attempt died with a transient
          [Machine.Fault]; the last fault message *)

type result = {
  job_name : string;
  digest : string;
  options : string;  (** {!Job.options_summary} of the job's options *)
  engine : string;  (** {!Job.engine_string} of the job's engine *)
  engine_effective : string;
      (** the engine that actually executed ({!Cm.Machine.effective_engine}):
          differs from [engine] only when [native] degraded to [fast].
          [""] (rendered as [engine]) for rows that never ran a machine *)
  seed : int;
  tuned : bool;
      (** the job ran under an auto-tuned layout ({!Job.t}[.tune]);
          emitted in rows only when true, so untuned rows render
          byte-identically to earlier versions *)
  status : status;
  simulated_seconds : float;  (** 0 when the job did not finish; partial
                                  progress for in-flight timeouts *)
  metrics : (string * float) list;
      (** deterministic machine counters ({!Cm.Cost.metrics}) for runs
          that executed ([Done]/[Timeout]); [[]] otherwise.  Canonical
          content: engine-identical and unaffected by telemetry, so it
          is safe to cache and to compare across runs *)
  output : string list;  (** lines produced by [print] *)
  wall_seconds : float;  (** time to produce this result in this process *)
  from_cache : bool;
  attempts : int;  (** executions tried; 1 = succeeded first try *)
  fault_trace : string list;  (** transient fault messages, in order *)
}

(** Deterministic identity of a result: everything except the wall time
    and cache provenance.  Byte-identical for a given job digest whether
    the result was recomputed or served from the cache. *)
val canonical_json : result -> string

(** One JSON line of telemetry: the canonical fields plus [wall_seconds]
    and [cache] provenance. *)
val json_line : result -> string

(** The {!json_line} object as a JSON value (the wire representation a
    serve [report] frame carries). *)
val to_json : result -> Jsonu.t

(** Inverse of {!to_json}: a served row re-renders byte-identically on
    the client side ({!canonical_json} included), so `ucc submit` can
    prove its rows equal `ucc batch`'s. *)
val of_json : Jsonu.t -> (result, string) Stdlib.result

type summary = {
  total : int;
  ok : int;
  failed : int;
  timeout : int;
  faulted : int;
  cache_hits : int;
  simulated_total : float;
  wall_total : float;  (** sum of per-job wall times (cpu-ish seconds) *)
  elapsed : float;  (** batch wall-clock, set by the caller *)
}

val summarize : elapsed:float -> result list -> summary
val json_of_summary : summary -> string
val pp_summary : Format.formatter -> summary -> unit
