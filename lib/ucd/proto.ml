(* The `ucc serve` wire protocol.

   Framing: JSON lines — each frame is exactly one JSON object on one
   LF-terminated line, at most [max_frame] bytes including the newline.
   Strings are byte-transparent (Jsonu escapes control bytes and leaves
   everything else raw), so UC sources and report rows cross the wire
   unmodified.

   Versioning: the first client frame must be [hello] carrying
   [version]; the server answers [welcome] (exact match) or a
   [version_mismatch] error and closes.  Within a version, unknown
   *fields* are ignored (additive evolution); unknown message *types*
   are a [protocol] error. *)

let version = 1
let default_max_frame = 1 lsl 20

(* ---- error codes ---- *)

type error_code =
  | Protocol  (** malformed frame: not JSON, no "type", unknown type *)
  | Oversized  (** frame exceeded the server's size bound *)
  | Version_mismatch
  | Bad_request  (** well-formed but unusable: bad fault plan, unknown corpus name … *)
  | Overloaded  (** admission control: the pool queue is at its bound *)
  | Quota  (** the tenant's in-flight quota is exhausted *)
  | Shutting_down  (** the server is draining; no new work *)
  | Unknown_job
  | Denied  (** operator-only operation refused on this connection *)

let code_string = function
  | Protocol -> "protocol"
  | Oversized -> "oversized"
  | Version_mismatch -> "version_mismatch"
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Quota -> "quota"
  | Shutting_down -> "shutting_down"
  | Unknown_job -> "unknown_job"
  | Denied -> "denied"

let code_of_string = function
  | "protocol" -> Some Protocol
  | "oversized" -> Some Oversized
  | "version_mismatch" -> Some Version_mismatch
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "quota" -> Some Quota
  | "shutting_down" -> Some Shutting_down
  | "unknown_job" -> Some Unknown_job
  | "denied" -> Some Denied
  | _ -> None

(* ---- message types ---- *)

type priority = Low | Normal | High

let priority_string = function Low -> "low" | Normal -> "normal" | High -> "high"

let priority_of_string = function
  | "low" -> Some Low
  | "normal" -> Some Normal
  | "high" -> Some High
  | _ -> None

type source = Inline of string | Corpus of string

(* The full Job option surface, flags spelled like the batch manifest;
   the server resolves them against its compile-option defaults. *)
type submit = {
  client_ref : string option;  (* echoed back in accepted/rejected *)
  name : string;
  source : source;
  seed : int option;
  fuel : int option;
  deadline : float option;
  faults : string option;  (* fault-plan text; parsed server-side *)
  retries : int option;
  no_news : bool;
  no_procopt : bool;
  no_mappings : bool;
  no_cse : bool;
  ir_opt : string option;  (* pass subset, e.g. "constprop,dce"; "off" disables *)
  tune : bool;  (* auto-tune the data layout before lowering *)
}

let submit_defaults ~name ~source =
  {
    client_ref = None;
    name;
    source;
    seed = None;
    fuel = None;
    deadline = None;
    faults = None;
    retries = None;
    no_news = false;
    no_procopt = false;
    no_mappings = false;
    no_cse = false;
    ir_opt = None;
    tune = false;
  }

type client_msg =
  | Hello of { version : int; tenant : string; priority : priority }
  | Submit of submit
  | Status of int  (* server-assigned job id *)
  | Status_digest of string  (* restart-stable: content digest, not id *)
  | Cancel of int
  | Trace of bool  (* subscribe/unsubscribe to this session's trace *)
  | Stats
  | Server_status  (* read-only liveness/depth/journal-lag probe *)
  | Drain  (* ask the server to stop accepting, drain and exit *)
  | Bye

type server_msg =
  | Welcome of { version : int; session : int; server : string }
  | Accepted of { client_ref : string option; job : int; digest : string }
  | Resumed of { client_ref : string option; job : int; digest : string }
      (* the digest was already in flight (or requeued from the journal);
         the caller is attached as a watcher of the existing job *)
  | Rejected of { client_ref : string option; code : error_code; msg : string }
  | Report of { job : int; row : Jsonu.t }
      (* the full Report.json_line object for the finished job *)
  | Status_reply of { job : int; state : string; row : Jsonu.t option }
  | Digest_reply of { digest : string; state : string; row : Jsonu.t option }
  | Cancel_reply of { job : int; ok : bool }
  | Trace_reply of bool
  | Trace_event of { job : int; event : Jsonu.t }  (* one Obs event *)
  | Stats_reply of Jsonu.t
  | Server_status_reply of Jsonu.t
  | Draining of { in_flight : int }
  | Shutdown of { msg : string }  (* server-initiated goodbye *)
  | Error of { code : error_code; msg : string }

(* ---- encoding ---- *)

let opt_field k f = function None -> [] | Some v -> [ (k, f v) ]
let flag_field k b = if b then [ (k, Jsonu.Bool true) ] else []

let submit_obj s =
  Jsonu.Obj
    ([ ("type", Jsonu.Str "submit") ]
    @ opt_field "ref" (fun r -> Jsonu.Str r) s.client_ref
    @ [ ("name", Jsonu.Str s.name) ]
    @ (match s.source with
      | Inline text -> [ ("source", Jsonu.Str text) ]
      | Corpus n -> [ ("corpus", Jsonu.Str n) ])
    @ opt_field "seed" (fun v -> Jsonu.Int v) s.seed
    @ opt_field "fuel" (fun v -> Jsonu.Int v) s.fuel
    @ opt_field "deadline" (fun v -> Jsonu.Float v) s.deadline
    @ opt_field "faults" (fun v -> Jsonu.Str v) s.faults
    @ opt_field "retries" (fun v -> Jsonu.Int v) s.retries
    @ flag_field "no_news" s.no_news
    @ flag_field "no_procopt" s.no_procopt
    @ flag_field "no_mappings" s.no_mappings
    @ flag_field "no_cse" s.no_cse
    @ opt_field "ir_opt" (fun v -> Jsonu.Str v) s.ir_opt
    @ flag_field "tune" s.tune)

let client_json = function
  | Hello { version; tenant; priority } ->
      Jsonu.Obj
        [
          ("type", Jsonu.Str "hello");
          ("version", Jsonu.Int version);
          ("tenant", Jsonu.Str tenant);
          ("priority", Jsonu.Str (priority_string priority));
        ]
  | Submit s -> submit_obj s
  | Status job ->
      Jsonu.Obj [ ("type", Jsonu.Str "status"); ("job", Jsonu.Int job) ]
  | Status_digest digest ->
      Jsonu.Obj
        [ ("type", Jsonu.Str "status_digest"); ("digest", Jsonu.Str digest) ]
  | Cancel job ->
      Jsonu.Obj [ ("type", Jsonu.Str "cancel"); ("job", Jsonu.Int job) ]
  | Trace enable ->
      Jsonu.Obj [ ("type", Jsonu.Str "trace"); ("enable", Jsonu.Bool enable) ]
  | Stats -> Jsonu.Obj [ ("type", Jsonu.Str "stats") ]
  | Server_status -> Jsonu.Obj [ ("type", Jsonu.Str "server_status") ]
  | Drain -> Jsonu.Obj [ ("type", Jsonu.Str "drain") ]
  | Bye -> Jsonu.Obj [ ("type", Jsonu.Str "bye") ]

let server_json = function
  | Welcome { version; session; server } ->
      Jsonu.Obj
        [
          ("type", Jsonu.Str "welcome");
          ("version", Jsonu.Int version);
          ("session", Jsonu.Int session);
          ("server", Jsonu.Str server);
        ]
  | Accepted { client_ref; job; digest } ->
      Jsonu.Obj
        ([ ("type", Jsonu.Str "accepted") ]
        @ opt_field "ref" (fun r -> Jsonu.Str r) client_ref
        @ [ ("job", Jsonu.Int job); ("digest", Jsonu.Str digest) ])
  | Resumed { client_ref; job; digest } ->
      Jsonu.Obj
        ([ ("type", Jsonu.Str "resumed") ]
        @ opt_field "ref" (fun r -> Jsonu.Str r) client_ref
        @ [ ("job", Jsonu.Int job); ("digest", Jsonu.Str digest) ])
  | Rejected { client_ref; code; msg } ->
      Jsonu.Obj
        ([ ("type", Jsonu.Str "rejected") ]
        @ opt_field "ref" (fun r -> Jsonu.Str r) client_ref
        @ [
            ("code", Jsonu.Str (code_string code)); ("msg", Jsonu.Str msg);
          ])
  | Report { job; row } ->
      Jsonu.Obj
        [ ("type", Jsonu.Str "report"); ("job", Jsonu.Int job); ("row", row) ]
  | Status_reply { job; state; row } ->
      Jsonu.Obj
        ([
           ("type", Jsonu.Str "status_reply");
           ("job", Jsonu.Int job);
           ("state", Jsonu.Str state);
         ]
        @ opt_field "row" Fun.id row)
  | Digest_reply { digest; state; row } ->
      Jsonu.Obj
        ([
           ("type", Jsonu.Str "digest_reply");
           ("digest", Jsonu.Str digest);
           ("state", Jsonu.Str state);
         ]
        @ opt_field "row" Fun.id row)
  | Cancel_reply { job; ok } ->
      Jsonu.Obj
        [
          ("type", Jsonu.Str "cancel_reply");
          ("job", Jsonu.Int job);
          ("ok", Jsonu.Bool ok);
        ]
  | Trace_reply enabled ->
      Jsonu.Obj
        [ ("type", Jsonu.Str "trace_reply"); ("enable", Jsonu.Bool enabled) ]
  | Trace_event { job; event } ->
      Jsonu.Obj
        [
          ("type", Jsonu.Str "trace_event");
          ("job", Jsonu.Int job);
          ("event", event);
        ]
  | Stats_reply body ->
      Jsonu.Obj [ ("type", Jsonu.Str "stats_reply"); ("stats", body) ]
  | Server_status_reply body ->
      Jsonu.Obj [ ("type", Jsonu.Str "server_status_reply"); ("status", body) ]
  | Draining { in_flight } ->
      Jsonu.Obj
        [ ("type", Jsonu.Str "draining"); ("in_flight", Jsonu.Int in_flight) ]
  | Shutdown { msg } ->
      Jsonu.Obj [ ("type", Jsonu.Str "shutdown"); ("msg", Jsonu.Str msg) ]
  | Error { code; msg } ->
      Jsonu.Obj
        [
          ("type", Jsonu.Str "error");
          ("code", Jsonu.Str (code_string code));
          ("msg", Jsonu.Str msg);
        ]

let client_line m = Jsonu.to_string (client_json m)
let server_line m = Jsonu.to_string (server_json m)

(* ---- decoding ---- *)

(* Unknown fields are deliberately ignored (additive evolution within a
   version); missing or mistyped required fields are typed errors. *)

let field kvs k = List.assoc_opt k kvs

let str_field kvs k =
  match field kvs k with Some (Jsonu.Str s) -> Some s | _ -> None

let int_field kvs k =
  match field kvs k with Some (Jsonu.Int i) -> Some i | _ -> None

let num_field kvs k =
  match field kvs k with
  | Some (Jsonu.Float f) -> Some f
  | Some (Jsonu.Int i) -> Some (float_of_int i)
  | _ -> None

let bool_field kvs k =
  match field kvs k with Some (Jsonu.Bool b) -> Some b | _ -> None

(* NB: [server_msg]'s [Error] constructor shadows [Stdlib.Error] from
   here on; result-returning code below qualifies explicitly *)
let obj_of_line line =
  match Jsonu.of_string line with
  | Stdlib.Error msg -> Stdlib.Error (Protocol, "bad frame: " ^ msg)
  | Ok (Jsonu.Obj kvs) -> (
      match str_field kvs "type" with
      | Some ty -> Ok (ty, kvs)
      | None -> Stdlib.Error (Protocol, "frame has no \"type\" field"))
  | Ok _ -> Stdlib.Error (Protocol, "frame is not a JSON object")

let require what = function
  | Some v -> Ok v
  | None ->
      Stdlib.Error (Bad_request, Printf.sprintf "missing or mistyped %S" what)

let ( let* ) r f =
  match r with Ok v -> f v | Stdlib.Error e -> Stdlib.Error e

(* Shared with the journal: a stored [submit_obj] replays through the
   same decoder the wire uses, so a recovered job is rebuilt exactly as
   it was admitted. *)
let submit_of_fields kvs =
  let* name = require "name" (str_field kvs "name") in
  let* source =
    match (str_field kvs "source", str_field kvs "corpus") with
    | Some text, None -> Ok (Inline text)
    | None, Some n -> Ok (Corpus n)
    | Some _, Some _ ->
        Stdlib.Error (Bad_request, "submit has both \"source\" and \"corpus\"")
    | None, None ->
        Stdlib.Error (Bad_request, "submit needs \"source\" or \"corpus\"")
  in
  Ok
    {
      client_ref = str_field kvs "ref";
      name;
      source;
      seed = int_field kvs "seed";
      fuel = int_field kvs "fuel";
      deadline = num_field kvs "deadline";
      faults = str_field kvs "faults";
      retries = int_field kvs "retries";
      no_news = Option.value (bool_field kvs "no_news") ~default:false;
      no_procopt = Option.value (bool_field kvs "no_procopt") ~default:false;
      no_mappings = Option.value (bool_field kvs "no_mappings") ~default:false;
      no_cse = Option.value (bool_field kvs "no_cse") ~default:false;
      ir_opt = str_field kvs "ir_opt";
      tune = Option.value (bool_field kvs "tune") ~default:false;
    }

let submit_of_json = function
  | Jsonu.Obj kvs -> (
      match submit_of_fields kvs with
      | Ok s -> Ok s
      | Stdlib.Error (_, msg) -> Stdlib.Error msg)
  | _ -> Stdlib.Error "submit is not a JSON object"

let client_of_line line =
  let* ty, kvs = obj_of_line line in
  match ty with
  | "hello" ->
      let* v = require "version" (int_field kvs "version") in
      let tenant = Option.value (str_field kvs "tenant") ~default:"anonymous" in
      let* priority =
        match str_field kvs "priority" with
        | None -> Ok Normal
        | Some p -> (
            match priority_of_string p with
            | Some p -> Ok p
            | None -> Stdlib.Error (Bad_request, "bad priority " ^ p))
      in
      Ok (Hello { version = v; tenant; priority })
  | "submit" ->
      let* s = submit_of_fields kvs in
      Ok (Submit s)
  | "status" ->
      let* job = require "job" (int_field kvs "job") in
      Ok (Status job)
  | "status_digest" ->
      let* digest = require "digest" (str_field kvs "digest") in
      Ok (Status_digest digest)
  | "cancel" ->
      let* job = require "job" (int_field kvs "job") in
      Ok (Cancel job)
  | "trace" ->
      let* enable = require "enable" (bool_field kvs "enable") in
      Ok (Trace enable)
  | "stats" -> Ok Stats
  | "server_status" -> Ok Server_status
  | "drain" -> Ok Drain
  | "bye" -> Ok Bye
  | ty -> Stdlib.Error (Protocol, "unknown message type " ^ ty)

let server_of_line line =
  match obj_of_line line with
  | Stdlib.Error (_, msg) -> Stdlib.Error msg
  | Ok (ty, kvs) -> (
      let str k = str_field kvs k and int k = int_field kvs k in
      let fail what = Stdlib.Error (Printf.sprintf "%s: missing %S" ty what) in
      match ty with
      | "welcome" -> (
          match (int "version", int "session", str "server") with
          | Some version, Some session, Some server ->
              Ok (Welcome { version; session; server })
          | _ -> fail "version/session/server")
      | "accepted" -> (
          match (int "job", str "digest") with
          | Some job, Some digest ->
              Ok (Accepted { client_ref = str "ref"; job; digest })
          | _ -> fail "job/digest")
      | "resumed" -> (
          match (int "job", str "digest") with
          | Some job, Some digest ->
              Ok (Resumed { client_ref = str "ref"; job; digest })
          | _ -> fail "job/digest")
      | "rejected" -> (
          match (str "code", str "msg") with
          | Some code, Some msg -> (
              match code_of_string code with
              | Some code -> Ok (Rejected { client_ref = str "ref"; code; msg })
              | None -> Stdlib.Error ("unknown reject code " ^ code))
          | _ -> fail "code/msg")
      | "report" -> (
          match (int "job", field kvs "row") with
          | Some job, Some row -> Ok (Report { job; row })
          | _ -> fail "job/row")
      | "status_reply" -> (
          match (int "job", str "state") with
          | Some job, Some state ->
              Ok (Status_reply { job; state; row = field kvs "row" })
          | _ -> fail "job/state")
      | "digest_reply" -> (
          match (str "digest", str "state") with
          | Some digest, Some state ->
              Ok (Digest_reply { digest; state; row = field kvs "row" })
          | _ -> fail "digest/state")
      | "cancel_reply" -> (
          match (int "job", bool_field kvs "ok") with
          | Some job, Some ok -> Ok (Cancel_reply { job; ok })
          | _ -> fail "job/ok")
      | "trace_reply" -> (
          match bool_field kvs "enable" with
          | Some e -> Ok (Trace_reply e)
          | None -> fail "enable")
      | "trace_event" -> (
          match (int "job", field kvs "event") with
          | Some job, Some event -> Ok (Trace_event { job; event })
          | _ -> fail "job/event")
      | "stats_reply" -> (
          match field kvs "stats" with
          | Some body -> Ok (Stats_reply body)
          | None -> fail "stats")
      | "server_status_reply" -> (
          match field kvs "status" with
          | Some body -> Ok (Server_status_reply body)
          | None -> fail "status")
      | "draining" -> (
          match int "in_flight" with
          | Some n -> Ok (Draining { in_flight = n })
          | None -> fail "in_flight")
      | "shutdown" ->
          Ok (Shutdown { msg = Option.value (str "msg") ~default:"" })
      | "error" -> (
          match (str "code", str "msg") with
          | Some code, Some msg -> (
              match code_of_string code with
              | Some code -> Ok (Error { code; msg })
              | None -> Stdlib.Error ("unknown error code " ^ code))
          | _ -> fail "code/msg")
      | ty -> Stdlib.Error ("unknown message type " ^ ty))

(* ---- framing: bounded line reader over a file descriptor ---- *)

type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  buf : Buffer.t;  (* bytes of the current (incomplete) frame *)
  chunk : Bytes.t;
  mutable pending : string;  (* read-ahead beyond the last newline *)
  mutable over : bool;  (* current frame already past the bound *)
}

let reader ?(max_frame = default_max_frame) fd =
  {
    fd;
    max_frame = max 1 max_frame;
    buf = Buffer.create 512;
    chunk = Bytes.create 8192;
    pending = "";
    over = false;
  }

(* One frame per call.  `Oversized is returned once per offending frame
   (the remainder of that line is discarded as it streams in), so the
   caller can reply with a typed error and close. *)
let read_frame r =
  let take_line data =
    match String.index_opt data '\n' with
    | Some i ->
        let line = String.sub data 0 i in
        r.pending <- String.sub data (i + 1) (String.length data - i - 1);
        let was_over = r.over in
        r.over <- false;
        Buffer.clear r.buf;
        if was_over || String.length line > r.max_frame then Some `Oversized
        else Some (`Frame line)
    | None ->
        r.pending <- "";
        if r.over || Buffer.length r.buf + String.length data > r.max_frame
        then begin
          (* discard, but remember: the eventual newline ends a frame
             that was already too big *)
          Buffer.clear r.buf;
          r.over <- true
        end
        else Buffer.add_string r.buf data;
        None
  in
  let rec go () =
    if r.pending <> "" then begin
      let data = Buffer.contents r.buf ^ r.pending in
      Buffer.clear r.buf;
      match take_line data with Some res -> res | None -> go ()
    end
    else
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> `Eof
      | n -> (
          let data =
            Buffer.contents r.buf ^ Bytes.sub_string r.chunk 0 n
          in
          Buffer.clear r.buf;
          match take_line data with Some res -> res | None -> go ())
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          `Eof
  in
  go ()
