(* The `ucc serve` daemon: a compile-and-run service over Unix-domain
   (and optionally TCP) sockets speaking the Proto JSON-lines protocol.

   Thread/domain architecture:

   - one accept thread multiplexing the listeners and a self-pipe (the
     shutdown wakeup);
   - two threads per connection: a reader (parses frames, runs the
     dispatch loop) and a writer (drains the session outbox to the
     socket) — one writer per socket means reply and trace lines never
     interleave mid-frame;
   - a Pool.service of worker domains executing jobs through the
     ordinary Runner, so caching, fault quarantine, checkpoint slicing
     and deadline enforcement apply to served jobs unchanged.

   Admission control happens on the reader thread, before the queue:
   a draining server answers [shutting_down], a tenant past its
   in-flight quota [quota], a low-priority submission past the 3/4
   queue watermark [overloaded], and a full queue [overloaded] (the
   non-blocking Pool.try_submit path) — a client is never blocked by
   someone else's backlog, it gets a typed reply instead.

   Graceful shutdown (signal handler or a [drain] frame): stop
   accepting, reject new submissions, drain in-flight jobs bounded by
   [drain_timeout], flush every outbox, notify clients, exit 0 (1 if
   the timeout expired with jobs still running). *)

type config = {
  socket_path : string option;
  tcp_port : int option;
  domains : int;
  queue_bound : int;
  quotas : (string * int) list;
  default_quota : int option;
  drain_timeout : float;
  flush_timeout : float;
  policy : Runner.policy;
  max_frame : int;
  outbox_capacity : int;
  recent_results : int;
  journal : bool;  (* write-ahead job journal (needs a cache_dir) *)
  journal_fsync : bool;  (* fsync after every journal record *)
  chaos : Chaos.spec option;  (* seeded service-level fault injection *)
  verbose : bool;
}

let default_config =
  {
    socket_path = Some "ucd.sock";
    tcp_port = None;
    domains = 2;
    queue_bound = 16;
    quotas = [];
    default_quota = None;
    drain_timeout = 30.;
    flush_timeout = 5.;
    policy = Runner.default_policy;
    max_frame = Proto.default_max_frame;
    outbox_capacity = 4096;
    recent_results = 256;
    journal = true;
    journal_fsync = false;
    chaos = None;
    verbose = false;
  }

type job_state = Queued | Running | Done of Report.result | Cancelled

type job_entry = {
  job_id : int;
  digest : string;
  owner : Session.t option;
      (* None: requeued from the journal, its submitter is gone until
         it resubmits by digest and attaches as a watcher *)
  mutable watchers : Session.t list;
      (* sessions that resubmitted this in-flight digest: each gets the
         report frame, none holds a quota slot *)
  job : Job.t;
  mutable ckpt : string option;  (* latest journaled checkpoint blob *)
  mutable state : job_state;
}

(* a job that left the live table: only its outcome, digest and its
   owner's session id survive, so completed jobs retain neither their
   source nor their Session.t (a disconnected session must be
   collectable) *)
type finished = {
  fin_owner : int;  (* 0: recovered job, no owner session *)
  fin_digest : string;
  fin_state : string;  (* "done" | "faulted" | "cancelled" *)
  fin_row : Jsonu.t option;
}

type conn = {
  conn_fd : Unix.file_descr;
  conn_privileged : bool;  (* accepted on the unix socket, not TCP *)
  mutable conn_session : Session.t option;
  mutable conn_writer : Thread.t option;
}

type t = {
  cfg : config;
  cache : Cache.t;
  pool : Pool.service;
  registry : Session.registry;
  obs : Obs.t;  (* daemon-side scope (ucc serve --trace/--metrics) *)
  journal : Journal.t option;  (* write-ahead job journal *)
  chaos : Chaos.t option;  (* instantiated chaos plan *)
  started_at : float;
  jobs : (int, job_entry) Hashtbl.t;  (* queued/running only *)
  by_digest : (string, job_entry) Hashtbl.t;  (* live jobs, same lock *)
  recent : (int, finished) Hashtbl.t;  (* last [recent_results] outcomes *)
  recent_by_digest : (string, int) Hashtbl.t;  (* digest -> recent id *)
  recovered_terminal : (string, string) Hashtbl.t;
      (* journal-replayed terminal digests (status string) whose rows
         are gone: answers status_digest after a restart *)
  recent_order : int Queue.t;
  jobs_lock : Mutex.t;
  mutable next_job : int;
  mutable jobs_done : int;
  mutable jobs_cancelled : int;
  mutable jobs_recovered : int;
  listeners : (Unix.file_descr * bool) list;  (* fd, privileged *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  state_lock : Mutex.t;
  exit_cond : Condition.t;
  mutable draining : bool;
  mutable shutdown_reason : string;
  mutable exit_code : int option;
  conns_lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;  (* connection, reader thread *)
  mutable accept_thread : Thread.t option;
}

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let logf t fmt =
  Printf.ksprintf
    (fun msg -> if t.cfg.verbose then Printf.eprintf "ucd: %s\n%!" msg)
    fmt

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* pre-session replies (hello errors) go straight to the socket: the
   writer thread does not exist yet *)
let write_msg fd msg =
  try write_all fd (Proto.server_line msg ^ "\n") with _ -> ()

let is_draining t = locked t.state_lock (fun () -> t.draining)

(* Write-ahead: journal records precede the client-visible effects they
   describe.  Append failures degrade to non-durable (warned inside
   Journal), never to a dead daemon. *)
let journal_append t entry =
  match t.journal with None -> () | Some j -> Journal.append j entry

(* ---- job execution ---- *)

(* jobs_lock held: move a job out of the live table into the bounded
   recent window backing status queries, evicting the oldest outcome
   once the window is full *)
let retire t (entry : job_entry) ~state ~row =
  Hashtbl.remove t.jobs entry.job_id;
  Hashtbl.remove t.by_digest entry.digest;
  Hashtbl.replace t.recent entry.job_id
    {
      fin_owner =
        (match entry.owner with Some s -> s.Session.id | None -> 0);
      fin_digest = entry.digest;
      fin_state = state;
      fin_row = row;
    };
  Hashtbl.replace t.recent_by_digest entry.digest entry.job_id;
  Queue.push entry.job_id t.recent_order;
  while Queue.length t.recent_order > t.cfg.recent_results do
    let old = Queue.pop t.recent_order in
    (match Hashtbl.find_opt t.recent old with
    | Some f ->
        if Hashtbl.find_opt t.recent_by_digest f.fin_digest = Some old then
          Hashtbl.remove t.recent_by_digest f.fin_digest
    | None -> ());
    Hashtbl.remove t.recent old
  done

let terminal_state (r : Report.result) =
  match r.Report.status with Report.Faulted _ -> "faulted" | _ -> "done"

let journal_terminal_entry (entry : job_entry) (r : Report.result) =
  match r.Report.status with
  | Report.Faulted _ -> Journal.Faulted { digest = entry.digest }
  | Report.Done -> Journal.Done_ { digest = entry.digest; status = "ok" }
  | Report.Failed _ ->
      Journal.Done_ { digest = entry.digest; status = "failed" }
  | Report.Timeout _ ->
      Journal.Done_ { digest = entry.digest; status = "timeout" }

let deliver_report t (entry : job_entry) r =
  let row = Report.to_json r in
  let watchers =
    locked t.jobs_lock (fun () ->
        entry.state <- Done r;
        t.jobs_done <- t.jobs_done + 1;
        retire t entry ~state:(terminal_state r) ~row:(Some row);
        entry.watchers)
  in
  (* the journal learns the outcome before any client does: a crash
     after this line cannot resurrect a job a client saw finish *)
  journal_append t (journal_terminal_entry entry r);
  (* release the owner's quota slot (watchers hold none) BEFORE the
     report frame is enqueued: a client that resubmits the moment it
     sees the report must never race the release and bounce off its
     own still-occupied slot *)
  Option.iter
    (fun sess -> Session.finished t.registry sess ~completed:true)
    entry.owner;
  let recipients =
    (match entry.owner with Some s -> [ s ] | None -> []) @ List.rev watchers
  in
  List.iter
    (fun sess ->
      ignore (Session.send sess (Proto.Report { job = entry.job_id; row })))
    recipients

let rec job_task t (entry : job_entry) () =
  let run_it =
    locked t.jobs_lock (fun () ->
        match entry.state with
        | Queued ->
            entry.state <- Running;
            true
        | _ -> false)
  in
  if run_it then
    (* chaos: worker-crash simulation — throw the job back on the queue
       with no report, exactly what a killed worker would leave behind;
       the journal's accepted record is what keeps it alive *)
    match t.chaos with
    | Some ch when Chaos.fires_crash ch ~obs:t.obs -> (
        locked t.jobs_lock (fun () ->
            if entry.state = Running then entry.state <- Queued);
        match Pool.try_submit t.pool (job_task t entry) with
        | `Accepted -> ()
        | `Overloaded | `Closed ->
            (* no room to requeue: run it here — a simulated crash must
               never turn into a genuinely lost job *)
            job_task t entry ())
    | _ -> begin
        journal_append t (Journal.Started { digest = entry.digest });
        (* live trace subscription: a dedicated scope whose sink forwards
           each event to the owner's droppable outbox lane; otherwise the
           job runs against the daemon's own scope (Obs.null by default) *)
        let job_obs =
          match entry.owner with
          | Some owner when Session.trace_enabled owner ->
              let scope = Obs.create ~clock:Unix.gettimeofday () in
              Obs.add_sink scope (fun ev ->
                  ignore
                    (Session.send_trace owner ~job:entry.job_id
                       (Obs.event_json ev)));
              scope
          | _ -> t.obs
        in
        (* per-slice checkpoints flow into the journal so a restarted
           daemon resumes mid-run instead of replaying from scratch *)
        let on_checkpoint =
          match t.journal with
          | None -> None
          | Some _ ->
              Some
                (fun blob ->
                  entry.ckpt <- Some blob;
                  journal_append t
                    (Journal.Checkpointed { digest = entry.digest; ckpt = blob }))
        in
        let r =
          try
            Runner.run_job ~policy:t.cfg.policy ~obs:job_obs ?ckpt:entry.ckpt
              ?on_checkpoint ~cache:t.cache entry.job
          with exn ->
            (* the pool worker swallows exceptions, so a crash that escaped
               run_job (Out_of_memory, Stack_overflow …) must still turn
               into a report here — otherwise the job stays Running forever
               and the tenant's in-flight slot leaks *)
            Runner.crash_result entry.job exn
        in
        deliver_report t entry r
      end

(* ---- submission ---- *)

let job_of_submit (s : Proto.submit) =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* source =
    match s.Proto.source with
    | Proto.Inline text -> Ok text
    | Proto.Corpus n -> (
        match List.assoc_opt n Uc_programs.Programs.all_named with
        | Some src -> Ok src
        | None -> Error (Printf.sprintf "unknown corpus program %S" n))
  in
  let* faults =
    match s.Proto.faults with
    | None -> Ok None
    | Some plan -> (
        match Cm.Fault.parse plan with
        | Ok spec -> Ok (Some spec)
        | Error msg -> Error (Printf.sprintf "bad fault plan %S: %s" plan msg))
  in
  let* ir_opt =
    match s.Proto.ir_opt with
    | None -> Ok Cm.Iropt.default
    | Some passes -> (
        match Cm.Iropt.config_of_string passes with
        | Ok c -> Ok c
        | Error msg -> Error (Printf.sprintf "bad ir_opt %S: %s" passes msg))
  in
  let options =
    {
      Uc.Codegen.news_opt = not s.Proto.no_news;
      procopt = not s.Proto.no_procopt;
      use_mappings = not s.Proto.no_mappings;
      cse = not s.Proto.no_cse;
      ir_opt;
    }
  in
  Ok
    (Job.make ~options
       ?seed:s.Proto.seed ?fuel:s.Proto.fuel ?deadline:s.Proto.deadline
       ?faults ?retries:s.Proto.retries ~tune:s.Proto.tune ~name:s.Proto.name
       ~source ())

let reject t sess ~client_ref code msg =
  Session.note_rejected sess;
  Obs.count t.obs ("serve.rejected." ^ Proto.code_string code) 1;
  ignore (Session.send sess (Proto.Rejected { client_ref; code; msg }))

let handle_submit t sess (s : Proto.submit) =
  let client_ref = s.Proto.client_ref in
  if is_draining t then
    reject t sess ~client_ref Proto.Shutting_down "server is draining"
  else
    match job_of_submit s with
    | Error msg -> reject t sess ~client_ref Proto.Bad_request msg
    | Ok job -> (
        let digest = Job.digest job in
        (* exactly-once: resubmitting an in-flight digest (reconnected
           client, or a job requeued from the journal) joins the
           existing job as a watcher instead of duplicating it — no
           quota slot, no queue slot, one report frame per ack *)
        let joined =
          locked t.jobs_lock (fun () ->
              match Hashtbl.find_opt t.by_digest digest with
              | Some e ->
                  e.watchers <- sess :: e.watchers;
                  Some e.job_id
              | None -> None)
        in
        match joined with
        | Some id ->
            Obs.count t.obs "serve.resumed" 1;
            ignore
              (Session.send sess (Proto.Resumed { client_ref; job = id; digest }))
        | None -> (
            (* low-priority watermark: the last quarter of the queue is
               reserved for normal/high traffic, so background tenants
               shed first under pressure *)
            let st = Pool.service_stats t.pool in
            if
              sess.Session.priority = Proto.Low
              && st.Pool.queue_depth >= st.Pool.queue_bound * 3 / 4
            then
              reject t sess ~client_ref Proto.Overloaded
                (Printf.sprintf
                   "low-priority watermark: queue %d/%d" st.Pool.queue_depth
                   st.Pool.queue_bound)
            else
              match Session.admit t.registry sess with
              | Error msg -> reject t sess ~client_ref Proto.Quota msg
              | Ok () -> (
                  let entry =
                    locked t.jobs_lock (fun () ->
                        let id = t.next_job in
                        t.next_job <- id + 1;
                        let e =
                          {
                            job_id = id;
                            digest;
                            owner = Some sess;
                            watchers = [];
                            job;
                            ckpt = None;
                            state = Queued;
                          }
                        in
                        Hashtbl.replace t.jobs id e;
                        Hashtbl.replace t.by_digest digest e;
                        e)
                  in
                  let unwind () =
                    locked t.jobs_lock (fun () ->
                        Hashtbl.remove t.jobs entry.job_id;
                        Hashtbl.remove t.by_digest digest);
                    Session.finished t.registry sess ~completed:false
                  in
                  match Pool.try_submit t.pool (job_task t entry) with
                  | `Accepted ->
                      (* write-ahead: journal the acceptance before the
                         client hears it, so every acked job survives a
                         SIGKILL *)
                      journal_append t
                        (Journal.Accepted
                           {
                             digest;
                             name = s.Proto.name;
                             tenant = sess.Session.tenant;
                             submit = Proto.submit_obj s;
                           });
                      Obs.count t.obs "serve.accepted" 1;
                      ignore
                        (Session.send sess
                           (Proto.Accepted
                              { client_ref; job = entry.job_id; digest }))
                  | `Overloaded ->
                      unwind ();
                      (* re-sample: [st] predates admission *)
                      let st = Pool.service_stats t.pool in
                      reject t sess ~client_ref Proto.Overloaded
                        (Printf.sprintf "queue full (%d/%d)" st.Pool.queue_depth
                           st.Pool.queue_bound)
                  | `Closed ->
                      unwind ();
                      reject t sess ~client_ref Proto.Shutting_down
                        "server is draining")))

(* ---- the rest of the dispatch surface ---- *)

let owns sess (e : job_entry) =
  match e.owner with
  | Some o -> o.Session.id = sess.Session.id
  | None -> false

let owned_entry t sess job =
  locked t.jobs_lock (fun () ->
      match Hashtbl.find_opt t.jobs job with
      | Some e when owns sess e -> Some e
      | _ -> None)

let state_reply (e : job_entry) =
  match e.state with
  | Queued -> ("queued", None)
  | Running -> ("running", None)
  | Cancelled -> ("cancelled", None)
  | Done r -> (terminal_state r, Some (Report.to_json r))

let handle_status t sess job =
  let reply =
    locked t.jobs_lock (fun () ->
        match Hashtbl.find_opt t.jobs job with
        | Some e when owns sess e -> Some (state_reply e)
        | Some _ -> None
        | None -> (
            match Hashtbl.find_opt t.recent job with
            | Some f when f.fin_owner = sess.Session.id ->
                Some (f.fin_state, f.fin_row)
            | _ -> None))
  in
  match reply with
  | Some (state, row) ->
      ignore (Session.send sess (Proto.Status_reply { job; state; row }))
  | None ->
      ignore
        (Session.send sess
           (Proto.Error
              {
                code = Proto.Unknown_job;
                msg =
                  Printf.sprintf
                    "job %d is not yours, never existed or was evicted \
                     (server keeps the last %d outcomes)"
                    job t.cfg.recent_results;
              }))

(* Status by content digest: unlike job ids, digests survive a daemon
   restart, and holding one proves the caller could reconstruct the job
   anyway — so the lookup is deliberately not owner-gated.  Resolution
   order: live table, recent window, disk cache (rows persist across
   restarts), then journal-replayed terminal digests whose rows are
   gone. *)
let handle_status_digest t sess digest =
  let live =
    locked t.jobs_lock (fun () ->
        match Hashtbl.find_opt t.by_digest digest with
        | Some e -> Some (state_reply e)
        | None -> (
            match Hashtbl.find_opt t.recent_by_digest digest with
            | Some id -> (
                match Hashtbl.find_opt t.recent id with
                | Some f -> Some (f.fin_state, f.fin_row)
                | None -> None)
            | None -> None))
  in
  let state, row =
    match live with
    | Some r -> r
    | None -> (
        match Cache.find_run t.cache digest with
        | Some r ->
            ( terminal_state r,
              Some (Report.to_json { r with Report.from_cache = true }) )
        | None -> (
            match
              locked t.jobs_lock (fun () ->
                  Hashtbl.find_opt t.recovered_terminal digest)
            with
            | Some s -> ((if s = "ok" then "done" else s), None)
            | None -> ("unknown", None)))
  in
  ignore (Session.send sess (Proto.Digest_reply { digest; state; row }))

let handle_cancel t sess job =
  match owned_entry t sess job with
  | None -> ignore (Session.send sess (Proto.Cancel_reply { job; ok = false }))
  | Some e ->
      let ok =
        locked t.jobs_lock (fun () ->
            match e.state with
            | Queued ->
                e.state <- Cancelled;
                t.jobs_cancelled <- t.jobs_cancelled + 1;
                retire t e ~state:"cancelled" ~row:None;
                true
            | _ -> false)
      in
      (* the queued thunk still runs, sees Cancelled, and does nothing;
         release the admission slot now *)
      if ok then begin
        journal_append t (Journal.Done_ { digest = e.digest; status = "cancelled" });
        Session.finished t.registry sess ~completed:false
      end;
      ignore (Session.send sess (Proto.Cancel_reply { job; ok }))

let stats_json t =
  let cache = Cache.stats t.cache in
  let jobs_total, done_, cancelled =
    locked t.jobs_lock (fun () ->
        (t.next_job - 1, t.jobs_done, t.jobs_cancelled))
  in
  Jsonu.Obj
    [
      ( "server",
        Jsonu.Obj
          [
            ("version", Jsonu.Int Proto.version);
            ("draining", Jsonu.Bool (is_draining t));
            ("jobs_submitted", Jsonu.Int jobs_total);
            ("jobs_done", Jsonu.Int done_);
            ("jobs_cancelled", Jsonu.Int cancelled);
          ] );
      ("pool", Jsonu.Obj (Pool.stats_fields (Pool.service_stats t.pool)));
      ("sessions", Jsonu.Obj (Session.registry_fields t.registry));
      ( "cache",
        Jsonu.Obj
          [
            ("ast_hits", Jsonu.Int cache.Cache.ast_hits);
            ("ast_misses", Jsonu.Int cache.Cache.ast_misses);
            ("ir_hits", Jsonu.Int cache.Cache.ir_hits);
            ("ir_misses", Jsonu.Int cache.Cache.ir_misses);
            ("run_hits", Jsonu.Int cache.Cache.run_hits);
            ("run_misses", Jsonu.Int cache.Cache.run_misses);
            ("corruptions", Jsonu.Int cache.Cache.corruptions);
            ("write_failures", Jsonu.Int cache.Cache.write_failures);
          ] );
    ]

(* The read-only operational snapshot behind `ucc status`: uptime, pool
   and queue depth, journal lag, per-tenant quota usage.  Deliberately
   allowed on TCP — it cannot change anything. *)
let server_status_json t =
  let st = Pool.service_stats t.pool in
  let submitted, done_, cancelled, recovered =
    locked t.jobs_lock (fun () ->
        (t.next_job - 1, t.jobs_done, t.jobs_cancelled, t.jobs_recovered))
  in
  let journal =
    match t.journal with
    | None -> Jsonu.Obj [ ("enabled", Jsonu.Bool false) ]
    | Some j ->
        let s = Journal.stats j in
        Jsonu.Obj
          [
            ("enabled", Jsonu.Bool true);
            ("fsync", Jsonu.Bool t.cfg.journal_fsync);
            ("appended", Jsonu.Int s.Journal.appended);
            ("lag", Jsonu.Int (Journal.lag j));
            ("write_failures", Jsonu.Int s.Journal.write_failures);
            ("replayed", Jsonu.Int s.Journal.s_replayed);
            ("corrupt", Jsonu.Int s.Journal.s_corrupt);
            ("requeued", Jsonu.Int s.Journal.s_requeued);
          ]
  in
  let tenants =
    List.map
      (fun (tenant, in_flight, quota) ->
        Jsonu.Obj
          ([
             ("tenant", Jsonu.Str tenant);
             ("in_flight", Jsonu.Int in_flight);
           ]
          @ match quota with Some q -> [ ("quota", Jsonu.Int q) ] | None -> []))
      (Session.tenant_usage t.registry)
  in
  Jsonu.Obj
    [
      ("version", Jsonu.Int Proto.version);
      ("uptime_seconds", Jsonu.Float (Unix.gettimeofday () -. t.started_at));
      ("draining", Jsonu.Bool (is_draining t));
      ( "jobs",
        Jsonu.Obj
          [
            ("submitted", Jsonu.Int submitted);
            ("done", Jsonu.Int done_);
            ("cancelled", Jsonu.Int cancelled);
            ("recovered", Jsonu.Int recovered);
          ] );
      ( "pool",
        Jsonu.Obj
          [
            ("queue_depth", Jsonu.Int st.Pool.queue_depth);
            ("queue_bound", Jsonu.Int st.Pool.queue_bound);
            ("busy", Jsonu.Int st.Pool.busy);
            ("idle", Jsonu.Int st.Pool.idle);
          ] );
      ("journal", journal);
      ( "chaos",
        Jsonu.Str
          (match t.chaos with Some c -> Chaos.canonical c | None -> "off") );
      ("tenants", Jsonu.List tenants);
    ]

(* ---- shutdown ---- *)

let request_shutdown ?(reason = "shutdown requested") t =
  let first =
    locked t.state_lock (fun () ->
        if t.draining then false
        else begin
          t.draining <- true;
          t.shutdown_reason <- reason;
          true
        end)
  in
  if first then (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1) with _ -> ());
  first

let handle_drain t sess =
  (* quotas isolate tenants for submission, but drain terminates the
     whole daemon: only connections on the unix socket (operator-owned
     by filesystem permissions) may request it — any TCP client could
     otherwise shut the server down for everyone *)
  if not sess.Session.privileged then begin
    Obs.count t.obs "serve.rejected.denied" 1;
    ignore
      (Session.send sess
         (Proto.Error
            {
              code = Proto.Denied;
              msg = "drain is operator-only: connect over the unix socket";
            }))
  end
  else begin
    let st = Pool.service_stats t.pool in
    ignore
      (Session.send sess
         (Proto.Draining { in_flight = st.Pool.queue_depth + st.Pool.busy }));
    ignore (request_shutdown ~reason:"drain requested by client" t)
  end

(* ---- per-connection threads ---- *)

let writer_thread t sess fd =
  let rec loop () =
    match Session.outbox_pop sess with
    | None -> ()
    | Some line -> (
        (* chaos: slow-reader stall — the writer sleeps as if the
           client stopped draining its socket, backing pressure up
           through the outbox *)
        (match t.chaos with
        | Some ch -> (
            match Chaos.fires_slow ch ~obs:t.obs with
            | Some d -> Thread.delay d
            | None -> ())
        | None -> ());
        (* chaos: torn frame — emit a prefix of the line, then tear the
           connection down; the client sees a truncated frame exactly
           as it would after a mid-write daemon crash *)
        let torn =
          match t.chaos with
          | Some ch -> Chaos.fires_frame ch ~obs:t.obs
          | None -> false
        in
        if torn then begin
          (try write_all fd (String.sub line 0 (max 1 (String.length line / 2)))
           with _ -> ());
          Session.close_outbox sess;
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
          loop ()  (* drain the closed lane so producers never block *)
        end
        else
          match write_all fd (line ^ "\n") with
          | () -> loop ()
          | exception _ ->
              (* client gone: close the lane so producers stop, and keep
                 draining so a blocked push can never deadlock *)
              Session.close_outbox sess;
              loop ())
  in
  loop ();
  (* flushing done (or futile): end the conversation; the reader sees
     EOF, cleans up, and owns the close *)
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()

let dispatch t sess = function
  | Proto.Submit s -> handle_submit t sess s
  | Proto.Status job -> handle_status t sess job
  | Proto.Status_digest digest -> handle_status_digest t sess digest
  | Proto.Cancel job -> handle_cancel t sess job
  | Proto.Trace enable ->
      Session.set_trace sess enable;
      ignore (Session.send sess (Proto.Trace_reply enable))
  | Proto.Stats ->
      ignore (Session.send sess (Proto.Stats_reply (stats_json t)))
  | Proto.Server_status ->
      ignore
        (Session.send sess (Proto.Server_status_reply (server_status_json t)))
  | Proto.Drain -> handle_drain t sess
  | Proto.Hello _ ->
      ignore
        (Session.send sess
           (Proto.Error
              { code = Proto.Protocol; msg = "hello after handshake" }))
  | Proto.Bye -> ()  (* handled by the loop *)

let reader_thread t conn =
  let fd = conn.conn_fd in
  let r = Proto.reader ~max_frame:t.cfg.max_frame fd in
  (* handshake: the first frame must be a version-matching hello *)
  let handshake () =
    match Proto.read_frame r with
    | `Eof -> None
    | `Oversized ->
        write_msg fd
          (Proto.Error { code = Proto.Oversized; msg = "hello frame too large" });
        None
    | `Frame line -> (
        match Proto.client_of_line line with
        | Ok (Proto.Hello { version; tenant; priority }) ->
            if version <> Proto.version then begin
              write_msg fd
                (Proto.Error
                   {
                     code = Proto.Version_mismatch;
                     msg =
                       Printf.sprintf "server speaks version %d, client %d"
                         Proto.version version;
                   });
              None
            end
            else begin
              let sess =
                Session.attach ~privileged:conn.conn_privileged t.registry
                  ~tenant ~priority ~outbox_capacity:t.cfg.outbox_capacity
              in
              conn.conn_session <- Some sess;
              let w = Thread.create (fun () -> writer_thread t sess fd) () in
              conn.conn_writer <- Some w;
              ignore
                (Session.send sess
                   (Proto.Welcome
                      {
                        version = Proto.version;
                        session = sess.Session.id;
                        server = "ucd/1";
                      }));
              Some sess
            end
        | Ok _ ->
            write_msg fd
              (Proto.Error
                 { code = Proto.Protocol; msg = "first frame must be hello" });
            None
        | Error (code, msg) ->
            write_msg fd (Proto.Error { code; msg });
            None)
  in
  (match handshake () with
  | None -> ()
  | Some sess ->
      Obs.count t.obs "serve.sessions" 1;
      logf t "session %d: tenant %s connected" sess.Session.id
        sess.Session.tenant;
      let rec loop () =
        match Proto.read_frame r with
        | `Eof -> ()
        | `Oversized ->
            (* the offending frame was discarded at a newline boundary,
               so the stream stays in sync; reject and carry on *)
            ignore
              (Session.send sess
                 (Proto.Error
                    {
                      code = Proto.Oversized;
                      msg =
                        Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame;
                    }));
            loop ()
        | `Frame line ->
            (* chaos: socket reset — drop the connection before the
               frame is processed, as if the network died; the client
               must reconnect and resubmit by digest *)
            let reset =
              match t.chaos with
              | Some ch -> Chaos.fires_reset ch ~obs:t.obs
              | None -> false
            in
            if reset then begin
              Session.close_outbox sess;
              try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()
            end
            else (
              match Proto.client_of_line line with
              | Ok Proto.Bye -> ()
              | Ok msg ->
                  dispatch t sess msg;
                  loop ()
              | Error (code, msg) ->
                  ignore (Session.send sess (Proto.Error { code; msg }));
                  loop ())
      in
      loop ();
      logf t "session %d: disconnected" sess.Session.id;
      Session.detach t.registry sess);
  (* reap the writer (detach closed the outbox, so it terminates after
     flushing), then own the close *)
  Option.iter Thread.join conn.conn_writer;
  (try Unix.close fd with _ -> ());
  locked t.conns_lock (fun () ->
      t.conns <- List.filter (fun (c, _) -> c != conn) t.conns)

(* ---- accept loop and lifecycle ---- *)

let accept_loop t =
  let rec loop () =
    match
      Unix.select (t.wake_r :: List.map fst t.listeners) [] [] (-1.)
    with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | ready, _, _ ->
        if List.mem t.wake_r ready then ()  (* shutdown *)
        else begin
          List.iter
            (fun (lfd, privileged) ->
              if List.mem lfd ready then
                match Unix.accept lfd with
                | fd, _ ->
                    Obs.count t.obs "serve.connections" 1;
                    let conn =
                      {
                        conn_fd = fd;
                        conn_privileged = privileged;
                        conn_session = None;
                        conn_writer = None;
                      }
                    in
                    let th = Thread.create (fun () -> reader_thread t conn) () in
                    locked t.conns_lock (fun () ->
                        t.conns <- (conn, th) :: t.conns)
                | exception Unix.Unix_error (_, _, _) -> ())
            t.listeners;
          loop ()
        end
  in
  loop ();
  (* ---- graceful drain ---- *)
  logf t "%s: draining" t.shutdown_reason;
  List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
  (match t.cfg.socket_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ());
  Pool.close t.pool;
  let drained = Pool.drain ~timeout:t.cfg.drain_timeout t.pool in
  if not drained then
    logf t "drain timeout (%.1fs) expired with jobs still running"
      t.cfg.drain_timeout;
  (* every in-flight report has been pushed; say goodbye and flush *)
  List.iter
    (fun sess ->
      ignore (Session.send sess (Proto.Shutdown { msg = t.shutdown_reason }));
      Session.close_outbox sess)
    (Session.all t.registry);
  (* wake pre-handshake connections stuck in read (no outbox, no
     goodbye owed to them) *)
  locked t.conns_lock (fun () ->
      List.iter
        (fun (c, _) ->
          if c.conn_session = None then
            try Unix.shutdown c.conn_fd Unix.SHUTDOWN_ALL with _ -> ())
        t.conns);
  (* bounded flush: give every writer [flush_timeout] to push its
     goodbye, then force-disconnect the stragglers — a client that
     stopped reading leaves its writer blocked in write and its reader
     blocked in read, and must not wedge shutdown (the shutdown wakes
     both with an error) *)
  let flush_deadline = Unix.gettimeofday () +. t.cfg.flush_timeout in
  let rec await_flush () =
    if locked t.conns_lock (fun () -> t.conns <> []) then
      if Unix.gettimeofday () < flush_deadline then begin
        Thread.delay 0.05;
        await_flush ()
      end
      else begin
        logf t "flush timeout (%.1fs): force-disconnecting stalled clients"
          t.cfg.flush_timeout;
        locked t.conns_lock (fun () ->
            List.iter
              (fun (c, _) ->
                try Unix.shutdown c.conn_fd Unix.SHUTDOWN_ALL with _ -> ())
              t.conns)
      end
  in
  await_flush ();
  let conns = locked t.conns_lock (fun () -> t.conns) in
  List.iter (fun (_, th) -> Thread.join th) conns;
  Pool.publish t.pool t.obs;
  Cache.publish t.cache t.obs;
  (* the journal outlives the daemon (that is its point); close the fd
     and mirror its counters before exiting *)
  Option.iter
    (fun j ->
      Journal.publish j t.obs;
      Journal.close j)
    t.journal;
  locked t.state_lock (fun () ->
      t.exit_code <- Some (if drained then 0 else 1);
      Condition.broadcast t.exit_cond)

let listen_unix path =
  (* a stale socket file from a dead daemon would make bind fail;
     replace it (two live daemons on one path is an operator error the
     second bind cannot detect portably) *)
  (try if Sys.file_exists path then Unix.unlink path with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let start ?(obs = Obs.null) ?cache_dir cfg =
  (* a dead client's socket must never kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* unix-socket connections are operator-trusted (the path's
     filesystem permissions gate them); TCP ones are not *)
  let listeners =
    (match cfg.socket_path with
    | Some p -> [ (listen_unix p, true) ]
    | None -> [])
    @ (match cfg.tcp_port with
      | Some p -> [ (listen_tcp p, false) ]
      | None -> [])
  in
  if listeners = [] then
    invalid_arg "Server.start: no socket_path and no tcp_port";
  let wake_r, wake_w = Unix.pipe () in
  let cache =
    match cache_dir with
    | Some dir -> Cache.create ~dir ()
    | None -> Cache.create ()
  in
  let chaos =
    Option.map
      (fun spec ->
        let c = Chaos.instantiate spec in
        Cache.set_write_fault cache (fun () -> Chaos.fires_disk c ~obs);
        c)
      cfg.chaos
  in
  (* replay the journal before accepting anything: a `done` record
     whose cached report vanished is resurrected and recomputed
     (determinism makes the recomputed row byte-identical) *)
  let journal, replay =
    match (cache_dir, cfg.journal) with
    | Some dir, true -> (
        match
          Journal.recover ~fsync:cfg.journal_fsync ~dir
            ~keep:(fun ~digest ~status ->
              status = "ok" && Cache.find_run cache digest = None)
            ()
        with
        | Ok (j, rp) -> (Some j, rp)
        | Error msg ->
            Printf.eprintf
              "ucd: warning: journal disabled: %s; continuing without \
               durability\n\
               %!"
              msg;
            (None, Journal.{ pending = []; finished = []; replayed = 0; corrupt = 0 }))
    | _ ->
        (None, Journal.{ pending = []; finished = []; replayed = 0; corrupt = 0 })
  in
  let t =
    {
      cfg;
      cache;
      pool = Pool.service ~domains:cfg.domains ~queue_bound:cfg.queue_bound ();
      registry =
        Session.registry ~quotas:cfg.quotas ?default_quota:cfg.default_quota ();
      obs;
      journal;
      chaos;
      started_at = Unix.gettimeofday ();
      jobs = Hashtbl.create 64;
      by_digest = Hashtbl.create 64;
      recent = Hashtbl.create 64;
      recent_by_digest = Hashtbl.create 64;
      recovered_terminal = Hashtbl.create 16;
      recent_order = Queue.create ();
      jobs_lock = Mutex.create ();
      next_job = 1;
      jobs_done = 0;
      jobs_cancelled = 0;
      jobs_recovered = 0;
      listeners;
      wake_r;
      wake_w;
      state_lock = Mutex.create ();
      exit_cond = Condition.create ();
      draining = false;
      shutdown_reason = "";
      exit_code = None;
      conns_lock = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  (* journal-replayed terminal digests whose rows are gone still answer
     status_digest queries *)
  List.iter
    (fun (digest, status) -> Hashtbl.replace t.recovered_terminal digest status)
    replay.Journal.finished;
  (* requeue every accepted-but-unfinished job, resuming from its
     latest checkpoint; clients reattach by resubmitting the digest *)
  List.iter
    (fun (p : Journal.pending) ->
      match
        Result.bind (Proto.submit_of_json p.Journal.p_submit) job_of_submit
      with
      | Error msg ->
          (* unreplayable (e.g. a corpus name the binary no longer
             knows): journal it terminal so it stops haunting replays *)
          Printf.eprintf
            "ucd: warning: cannot requeue journaled job %s (%s); marking \
             failed\n\
             %!"
            p.Journal.p_digest msg;
          Option.iter
            (fun j ->
              Journal.append j
                (Journal.Done_ { digest = p.Journal.p_digest; status = "failed" }))
            journal;
          Hashtbl.replace t.recovered_terminal p.Journal.p_digest "failed"
      | Ok job ->
          let entry =
            locked t.jobs_lock (fun () ->
                let id = t.next_job in
                t.next_job <- id + 1;
                t.jobs_recovered <- t.jobs_recovered + 1;
                let e =
                  {
                    job_id = id;
                    digest = p.Journal.p_digest;
                    owner = None;
                    watchers = [];
                    job;
                    ckpt = p.Journal.p_ckpt;
                    state = Queued;
                  }
                in
                Hashtbl.replace t.jobs id e;
                Hashtbl.replace t.by_digest e.digest e;
                e)
          in
          (* blocking submit: recovery may requeue more than the queue
             bound, and rejecting would lose accepted work *)
          ignore (Pool.submit t.pool (job_task t entry)))
    replay.Journal.pending;
  if replay.Journal.pending <> [] || replay.Journal.corrupt > 0 then
    logf t "journal replay: %d record(s), %d requeued, %d corrupt"
      replay.Journal.replayed
      (List.length replay.Journal.pending)
      replay.Journal.corrupt;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  locked t.state_lock (fun () ->
      while t.exit_code = None do
        Condition.wait t.exit_cond t.state_lock
      done;
      Option.get t.exit_code)

let stop ?reason t =
  ignore (request_shutdown ?reason t);
  let code = wait t in
  Option.iter Thread.join t.accept_thread;
  (try Unix.close t.wake_r with _ -> ());
  (try Unix.close t.wake_w with _ -> ());
  Pool.shutdown t.pool;
  code

let stats t = stats_json t
