(* The `ucc serve` daemon: a compile-and-run service over Unix-domain
   (and optionally TCP) sockets speaking the Proto JSON-lines protocol.

   Thread/domain architecture:

   - one accept thread multiplexing the listeners and a self-pipe (the
     shutdown wakeup);
   - two threads per connection: a reader (parses frames, runs the
     dispatch loop) and a writer (drains the session outbox to the
     socket) — one writer per socket means reply and trace lines never
     interleave mid-frame;
   - a Pool.service of worker domains executing jobs through the
     ordinary Runner, so caching, fault quarantine, checkpoint slicing
     and deadline enforcement apply to served jobs unchanged.

   Admission control happens on the reader thread, before the queue:
   a draining server answers [shutting_down], a tenant past its
   in-flight quota [quota], a low-priority submission past the 3/4
   queue watermark [overloaded], and a full queue [overloaded] (the
   non-blocking Pool.try_submit path) — a client is never blocked by
   someone else's backlog, it gets a typed reply instead.

   Graceful shutdown (signal handler or a [drain] frame): stop
   accepting, reject new submissions, drain in-flight jobs bounded by
   [drain_timeout], flush every outbox, notify clients, exit 0 (1 if
   the timeout expired with jobs still running). *)

type config = {
  socket_path : string option;
  tcp_port : int option;
  domains : int;
  queue_bound : int;
  quotas : (string * int) list;
  default_quota : int option;
  drain_timeout : float;
  flush_timeout : float;
  policy : Runner.policy;
  max_frame : int;
  outbox_capacity : int;
  recent_results : int;
  verbose : bool;
}

let default_config =
  {
    socket_path = Some "ucd.sock";
    tcp_port = None;
    domains = 2;
    queue_bound = 16;
    quotas = [];
    default_quota = None;
    drain_timeout = 30.;
    flush_timeout = 5.;
    policy = Runner.default_policy;
    max_frame = Proto.default_max_frame;
    outbox_capacity = 4096;
    recent_results = 256;
    verbose = false;
  }

type job_state = Queued | Running | Done of Report.result | Cancelled

type job_entry = {
  job_id : int;
  owner : Session.t;
  job : Job.t;
  mutable state : job_state;
}

(* a job that left the live table: only its outcome and its owner's
   session id survive, so completed jobs retain neither their source
   nor their Session.t (a disconnected session must be collectable) *)
type finished = {
  fin_owner : int;
  fin_state : string;  (* "done" | "cancelled" *)
  fin_row : Jsonu.t option;
}

type conn = {
  conn_fd : Unix.file_descr;
  conn_privileged : bool;  (* accepted on the unix socket, not TCP *)
  mutable conn_session : Session.t option;
  mutable conn_writer : Thread.t option;
}

type t = {
  cfg : config;
  cache : Cache.t;
  pool : Pool.service;
  registry : Session.registry;
  obs : Obs.t;  (* daemon-side scope (ucc serve --trace/--metrics) *)
  jobs : (int, job_entry) Hashtbl.t;  (* queued/running only *)
  recent : (int, finished) Hashtbl.t;  (* last [recent_results] outcomes *)
  recent_order : int Queue.t;
  jobs_lock : Mutex.t;
  mutable next_job : int;
  mutable jobs_done : int;
  mutable jobs_cancelled : int;
  listeners : (Unix.file_descr * bool) list;  (* fd, privileged *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  state_lock : Mutex.t;
  exit_cond : Condition.t;
  mutable draining : bool;
  mutable shutdown_reason : string;
  mutable exit_code : int option;
  conns_lock : Mutex.t;
  mutable conns : (conn * Thread.t) list;  (* connection, reader thread *)
  mutable accept_thread : Thread.t option;
}

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let logf t fmt =
  Printf.ksprintf
    (fun msg -> if t.cfg.verbose then Printf.eprintf "ucd: %s\n%!" msg)
    fmt

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* pre-session replies (hello errors) go straight to the socket: the
   writer thread does not exist yet *)
let write_msg fd msg =
  try write_all fd (Proto.server_line msg ^ "\n") with _ -> ()

let is_draining t = locked t.state_lock (fun () -> t.draining)

(* ---- job execution ---- *)

(* jobs_lock held: move a job out of the live table into the bounded
   recent window backing status queries, evicting the oldest outcome
   once the window is full *)
let retire t (entry : job_entry) ~state ~row =
  Hashtbl.remove t.jobs entry.job_id;
  Hashtbl.replace t.recent entry.job_id
    { fin_owner = entry.owner.Session.id; fin_state = state; fin_row = row };
  Queue.push entry.job_id t.recent_order;
  while Queue.length t.recent_order > t.cfg.recent_results do
    Hashtbl.remove t.recent (Queue.pop t.recent_order)
  done

let deliver_report t (entry : job_entry) r =
  let row = Report.to_json r in
  locked t.jobs_lock (fun () ->
      entry.state <- Done r;
      t.jobs_done <- t.jobs_done + 1;
      retire t entry ~state:"done" ~row:(Some row));
  ignore (Session.send entry.owner (Proto.Report { job = entry.job_id; row }));
  Session.finished t.registry entry.owner ~completed:true

let job_task t (entry : job_entry) () =
  let run_it =
    locked t.jobs_lock (fun () ->
        match entry.state with
        | Queued ->
            entry.state <- Running;
            true
        | _ -> false)
  in
  if run_it then begin
    (* live trace subscription: a dedicated scope whose sink forwards
       each event to the owner's droppable outbox lane; otherwise the
       job runs against the daemon's own scope (Obs.null by default) *)
    let job_obs =
      if Session.trace_enabled entry.owner then begin
        let scope = Obs.create ~clock:Unix.gettimeofday () in
        Obs.add_sink scope (fun ev ->
            ignore
              (Session.send_trace entry.owner ~job:entry.job_id
                 (Obs.event_json ev)));
        scope
      end
      else t.obs
    in
    let r =
      try
        Runner.run_job ~policy:t.cfg.policy ~obs:job_obs ~cache:t.cache
          entry.job
      with exn ->
        (* the pool worker swallows exceptions, so a crash that escaped
           run_job (Out_of_memory, Stack_overflow …) must still turn
           into a report here — otherwise the job stays Running forever
           and the tenant's in-flight slot leaks *)
        Runner.crash_result entry.job exn
    in
    deliver_report t entry r
  end

(* ---- submission ---- *)

let job_of_submit (s : Proto.submit) =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* source =
    match s.Proto.source with
    | Proto.Inline text -> Ok text
    | Proto.Corpus n -> (
        match List.assoc_opt n Uc_programs.Programs.all_named with
        | Some src -> Ok src
        | None -> Error (Printf.sprintf "unknown corpus program %S" n))
  in
  let* faults =
    match s.Proto.faults with
    | None -> Ok None
    | Some plan -> (
        match Cm.Fault.parse plan with
        | Ok spec -> Ok (Some spec)
        | Error msg -> Error (Printf.sprintf "bad fault plan %S: %s" plan msg))
  in
  let* ir_opt =
    match s.Proto.ir_opt with
    | None -> Ok Cm.Iropt.default
    | Some passes -> (
        match Cm.Iropt.config_of_string passes with
        | Ok c -> Ok c
        | Error msg -> Error (Printf.sprintf "bad ir_opt %S: %s" passes msg))
  in
  let options =
    {
      Uc.Codegen.news_opt = not s.Proto.no_news;
      procopt = not s.Proto.no_procopt;
      use_mappings = not s.Proto.no_mappings;
      cse = not s.Proto.no_cse;
      ir_opt;
    }
  in
  Ok
    (Job.make ~options
       ?seed:s.Proto.seed ?fuel:s.Proto.fuel ?deadline:s.Proto.deadline
       ?faults ?retries:s.Proto.retries ~name:s.Proto.name ~source ())

let reject t sess ~client_ref code msg =
  Session.note_rejected sess;
  Obs.count t.obs ("serve.rejected." ^ Proto.code_string code) 1;
  ignore (Session.send sess (Proto.Rejected { client_ref; code; msg }))

let handle_submit t sess (s : Proto.submit) =
  let client_ref = s.Proto.client_ref in
  if is_draining t then
    reject t sess ~client_ref Proto.Shutting_down "server is draining"
  else
    match job_of_submit s with
    | Error msg -> reject t sess ~client_ref Proto.Bad_request msg
    | Ok job -> (
        (* low-priority watermark: the last quarter of the queue is
           reserved for normal/high traffic, so background tenants
           shed first under pressure *)
        let st = Pool.service_stats t.pool in
        if
          sess.Session.priority = Proto.Low
          && st.Pool.queue_depth >= st.Pool.queue_bound * 3 / 4
        then
          reject t sess ~client_ref Proto.Overloaded
            (Printf.sprintf
               "low-priority watermark: queue %d/%d" st.Pool.queue_depth
               st.Pool.queue_bound)
        else
          match Session.admit t.registry sess with
          | Error msg -> reject t sess ~client_ref Proto.Quota msg
          | Ok () -> (
              let entry =
                locked t.jobs_lock (fun () ->
                    let id = t.next_job in
                    t.next_job <- id + 1;
                    let e = { job_id = id; owner = sess; job; state = Queued } in
                    Hashtbl.replace t.jobs id e;
                    e)
              in
              match Pool.try_submit t.pool (job_task t entry) with
              | `Accepted ->
                  Obs.count t.obs "serve.accepted" 1;
                  ignore
                    (Session.send sess
                       (Proto.Accepted
                          {
                            client_ref;
                            job = entry.job_id;
                            digest = Job.digest job;
                          }))
              | `Overloaded ->
                  locked t.jobs_lock (fun () -> Hashtbl.remove t.jobs entry.job_id);
                  Session.finished t.registry sess ~completed:false;
                  (* re-sample: [st] predates admission *)
                  let st = Pool.service_stats t.pool in
                  reject t sess ~client_ref Proto.Overloaded
                    (Printf.sprintf "queue full (%d/%d)" st.Pool.queue_depth
                       st.Pool.queue_bound)
              | `Closed ->
                  locked t.jobs_lock (fun () -> Hashtbl.remove t.jobs entry.job_id);
                  Session.finished t.registry sess ~completed:false;
                  reject t sess ~client_ref Proto.Shutting_down
                    "server is draining"))

(* ---- the rest of the dispatch surface ---- *)

let owned_entry t sess job =
  locked t.jobs_lock (fun () ->
      match Hashtbl.find_opt t.jobs job with
      | Some e when e.owner.Session.id = sess.Session.id -> Some e
      | _ -> None)

let handle_status t sess job =
  let reply =
    locked t.jobs_lock (fun () ->
        match Hashtbl.find_opt t.jobs job with
        | Some e when e.owner.Session.id = sess.Session.id ->
            Some
              (match e.state with
              | Queued -> ("queued", None)
              | Running -> ("running", None)
              | Cancelled -> ("cancelled", None)
              | Done r -> ("done", Some (Report.to_json r)))
        | Some _ -> None
        | None -> (
            match Hashtbl.find_opt t.recent job with
            | Some f when f.fin_owner = sess.Session.id ->
                Some (f.fin_state, f.fin_row)
            | _ -> None))
  in
  match reply with
  | Some (state, row) ->
      ignore (Session.send sess (Proto.Status_reply { job; state; row }))
  | None ->
      ignore
        (Session.send sess
           (Proto.Error
              {
                code = Proto.Unknown_job;
                msg =
                  Printf.sprintf
                    "job %d is not yours, never existed or was evicted \
                     (server keeps the last %d outcomes)"
                    job t.cfg.recent_results;
              }))

let handle_cancel t sess job =
  match owned_entry t sess job with
  | None -> ignore (Session.send sess (Proto.Cancel_reply { job; ok = false }))
  | Some e ->
      let ok =
        locked t.jobs_lock (fun () ->
            match e.state with
            | Queued ->
                e.state <- Cancelled;
                t.jobs_cancelled <- t.jobs_cancelled + 1;
                retire t e ~state:"cancelled" ~row:None;
                true
            | _ -> false)
      in
      (* the queued thunk still runs, sees Cancelled, and does nothing;
         release the admission slot now *)
      if ok then Session.finished t.registry sess ~completed:false;
      ignore (Session.send sess (Proto.Cancel_reply { job; ok }))

let stats_json t =
  let cache = Cache.stats t.cache in
  let jobs_total, done_, cancelled =
    locked t.jobs_lock (fun () ->
        (t.next_job - 1, t.jobs_done, t.jobs_cancelled))
  in
  Jsonu.Obj
    [
      ( "server",
        Jsonu.Obj
          [
            ("version", Jsonu.Int Proto.version);
            ("draining", Jsonu.Bool (is_draining t));
            ("jobs_submitted", Jsonu.Int jobs_total);
            ("jobs_done", Jsonu.Int done_);
            ("jobs_cancelled", Jsonu.Int cancelled);
          ] );
      ("pool", Jsonu.Obj (Pool.stats_fields (Pool.service_stats t.pool)));
      ("sessions", Jsonu.Obj (Session.registry_fields t.registry));
      ( "cache",
        Jsonu.Obj
          [
            ("ast_hits", Jsonu.Int cache.Cache.ast_hits);
            ("ast_misses", Jsonu.Int cache.Cache.ast_misses);
            ("ir_hits", Jsonu.Int cache.Cache.ir_hits);
            ("ir_misses", Jsonu.Int cache.Cache.ir_misses);
            ("run_hits", Jsonu.Int cache.Cache.run_hits);
            ("run_misses", Jsonu.Int cache.Cache.run_misses);
            ("corruptions", Jsonu.Int cache.Cache.corruptions);
            ("write_failures", Jsonu.Int cache.Cache.write_failures);
          ] );
    ]

(* ---- shutdown ---- *)

let request_shutdown ?(reason = "shutdown requested") t =
  let first =
    locked t.state_lock (fun () ->
        if t.draining then false
        else begin
          t.draining <- true;
          t.shutdown_reason <- reason;
          true
        end)
  in
  if first then (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1) with _ -> ());
  first

let handle_drain t sess =
  (* quotas isolate tenants for submission, but drain terminates the
     whole daemon: only connections on the unix socket (operator-owned
     by filesystem permissions) may request it — any TCP client could
     otherwise shut the server down for everyone *)
  if not sess.Session.privileged then begin
    Obs.count t.obs "serve.rejected.denied" 1;
    ignore
      (Session.send sess
         (Proto.Error
            {
              code = Proto.Denied;
              msg = "drain is operator-only: connect over the unix socket";
            }))
  end
  else begin
    let st = Pool.service_stats t.pool in
    ignore
      (Session.send sess
         (Proto.Draining { in_flight = st.Pool.queue_depth + st.Pool.busy }));
    ignore (request_shutdown ~reason:"drain requested by client" t)
  end

(* ---- per-connection threads ---- *)

let writer_thread sess fd =
  let rec loop () =
    match Session.outbox_pop sess with
    | None -> ()
    | Some line -> (
        match write_all fd (line ^ "\n") with
        | () -> loop ()
        | exception _ ->
            (* client gone: close the lane so producers stop, and keep
               draining so a blocked push can never deadlock *)
            Session.close_outbox sess;
            loop ())
  in
  loop ();
  (* flushing done (or futile): end the conversation; the reader sees
     EOF, cleans up, and owns the close *)
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()

let dispatch t sess = function
  | Proto.Submit s -> handle_submit t sess s
  | Proto.Status job -> handle_status t sess job
  | Proto.Cancel job -> handle_cancel t sess job
  | Proto.Trace enable ->
      Session.set_trace sess enable;
      ignore (Session.send sess (Proto.Trace_reply enable))
  | Proto.Stats ->
      ignore (Session.send sess (Proto.Stats_reply (stats_json t)))
  | Proto.Drain -> handle_drain t sess
  | Proto.Hello _ ->
      ignore
        (Session.send sess
           (Proto.Error
              { code = Proto.Protocol; msg = "hello after handshake" }))
  | Proto.Bye -> ()  (* handled by the loop *)

let reader_thread t conn =
  let fd = conn.conn_fd in
  let r = Proto.reader ~max_frame:t.cfg.max_frame fd in
  (* handshake: the first frame must be a version-matching hello *)
  let handshake () =
    match Proto.read_frame r with
    | `Eof -> None
    | `Oversized ->
        write_msg fd
          (Proto.Error { code = Proto.Oversized; msg = "hello frame too large" });
        None
    | `Frame line -> (
        match Proto.client_of_line line with
        | Ok (Proto.Hello { version; tenant; priority }) ->
            if version <> Proto.version then begin
              write_msg fd
                (Proto.Error
                   {
                     code = Proto.Version_mismatch;
                     msg =
                       Printf.sprintf "server speaks version %d, client %d"
                         Proto.version version;
                   });
              None
            end
            else begin
              let sess =
                Session.attach ~privileged:conn.conn_privileged t.registry
                  ~tenant ~priority ~outbox_capacity:t.cfg.outbox_capacity
              in
              conn.conn_session <- Some sess;
              let w = Thread.create (fun () -> writer_thread sess fd) () in
              conn.conn_writer <- Some w;
              ignore
                (Session.send sess
                   (Proto.Welcome
                      {
                        version = Proto.version;
                        session = sess.Session.id;
                        server = "ucd/1";
                      }));
              Some sess
            end
        | Ok _ ->
            write_msg fd
              (Proto.Error
                 { code = Proto.Protocol; msg = "first frame must be hello" });
            None
        | Error (code, msg) ->
            write_msg fd (Proto.Error { code; msg });
            None)
  in
  (match handshake () with
  | None -> ()
  | Some sess ->
      Obs.count t.obs "serve.sessions" 1;
      logf t "session %d: tenant %s connected" sess.Session.id
        sess.Session.tenant;
      let rec loop () =
        match Proto.read_frame r with
        | `Eof -> ()
        | `Oversized ->
            (* the offending frame was discarded at a newline boundary,
               so the stream stays in sync; reject and carry on *)
            ignore
              (Session.send sess
                 (Proto.Error
                    {
                      code = Proto.Oversized;
                      msg =
                        Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame;
                    }));
            loop ()
        | `Frame line -> (
            match Proto.client_of_line line with
            | Ok Proto.Bye -> ()
            | Ok msg ->
                dispatch t sess msg;
                loop ()
            | Error (code, msg) ->
                ignore (Session.send sess (Proto.Error { code; msg }));
                loop ())
      in
      loop ();
      logf t "session %d: disconnected" sess.Session.id;
      Session.detach t.registry sess);
  (* reap the writer (detach closed the outbox, so it terminates after
     flushing), then own the close *)
  Option.iter Thread.join conn.conn_writer;
  (try Unix.close fd with _ -> ());
  locked t.conns_lock (fun () ->
      t.conns <- List.filter (fun (c, _) -> c != conn) t.conns)

(* ---- accept loop and lifecycle ---- *)

let accept_loop t =
  let rec loop () =
    match
      Unix.select (t.wake_r :: List.map fst t.listeners) [] [] (-1.)
    with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | ready, _, _ ->
        if List.mem t.wake_r ready then ()  (* shutdown *)
        else begin
          List.iter
            (fun (lfd, privileged) ->
              if List.mem lfd ready then
                match Unix.accept lfd with
                | fd, _ ->
                    Obs.count t.obs "serve.connections" 1;
                    let conn =
                      {
                        conn_fd = fd;
                        conn_privileged = privileged;
                        conn_session = None;
                        conn_writer = None;
                      }
                    in
                    let th = Thread.create (fun () -> reader_thread t conn) () in
                    locked t.conns_lock (fun () ->
                        t.conns <- (conn, th) :: t.conns)
                | exception Unix.Unix_error (_, _, _) -> ())
            t.listeners;
          loop ()
        end
  in
  loop ();
  (* ---- graceful drain ---- *)
  logf t "%s: draining" t.shutdown_reason;
  List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
  (match t.cfg.socket_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ());
  Pool.close t.pool;
  let drained = Pool.drain ~timeout:t.cfg.drain_timeout t.pool in
  if not drained then
    logf t "drain timeout (%.1fs) expired with jobs still running"
      t.cfg.drain_timeout;
  (* every in-flight report has been pushed; say goodbye and flush *)
  List.iter
    (fun sess ->
      ignore (Session.send sess (Proto.Shutdown { msg = t.shutdown_reason }));
      Session.close_outbox sess)
    (Session.all t.registry);
  (* wake pre-handshake connections stuck in read (no outbox, no
     goodbye owed to them) *)
  locked t.conns_lock (fun () ->
      List.iter
        (fun (c, _) ->
          if c.conn_session = None then
            try Unix.shutdown c.conn_fd Unix.SHUTDOWN_ALL with _ -> ())
        t.conns);
  (* bounded flush: give every writer [flush_timeout] to push its
     goodbye, then force-disconnect the stragglers — a client that
     stopped reading leaves its writer blocked in write and its reader
     blocked in read, and must not wedge shutdown (the shutdown wakes
     both with an error) *)
  let flush_deadline = Unix.gettimeofday () +. t.cfg.flush_timeout in
  let rec await_flush () =
    if locked t.conns_lock (fun () -> t.conns <> []) then
      if Unix.gettimeofday () < flush_deadline then begin
        Thread.delay 0.05;
        await_flush ()
      end
      else begin
        logf t "flush timeout (%.1fs): force-disconnecting stalled clients"
          t.cfg.flush_timeout;
        locked t.conns_lock (fun () ->
            List.iter
              (fun (c, _) ->
                try Unix.shutdown c.conn_fd Unix.SHUTDOWN_ALL with _ -> ())
              t.conns)
      end
  in
  await_flush ();
  let conns = locked t.conns_lock (fun () -> t.conns) in
  List.iter (fun (_, th) -> Thread.join th) conns;
  Pool.publish t.pool t.obs;
  Cache.publish t.cache t.obs;
  locked t.state_lock (fun () ->
      t.exit_code <- Some (if drained then 0 else 1);
      Condition.broadcast t.exit_cond)

let listen_unix path =
  (* a stale socket file from a dead daemon would make bind fail;
     replace it (two live daemons on one path is an operator error the
     second bind cannot detect portably) *)
  (try if Sys.file_exists path then Unix.unlink path with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let start ?(obs = Obs.null) ?cache_dir cfg =
  (* a dead client's socket must never kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* unix-socket connections are operator-trusted (the path's
     filesystem permissions gate them); TCP ones are not *)
  let listeners =
    (match cfg.socket_path with
    | Some p -> [ (listen_unix p, true) ]
    | None -> [])
    @ (match cfg.tcp_port with
      | Some p -> [ (listen_tcp p, false) ]
      | None -> [])
  in
  if listeners = [] then
    invalid_arg "Server.start: no socket_path and no tcp_port";
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      cache =
        (match cache_dir with
        | Some dir -> Cache.create ~dir ()
        | None -> Cache.create ());
      pool = Pool.service ~domains:cfg.domains ~queue_bound:cfg.queue_bound ();
      registry =
        Session.registry ~quotas:cfg.quotas ?default_quota:cfg.default_quota ();
      obs;
      jobs = Hashtbl.create 64;
      recent = Hashtbl.create 64;
      recent_order = Queue.create ();
      jobs_lock = Mutex.create ();
      next_job = 1;
      jobs_done = 0;
      jobs_cancelled = 0;
      listeners;
      wake_r;
      wake_w;
      state_lock = Mutex.create ();
      exit_cond = Condition.create ();
      draining = false;
      shutdown_reason = "";
      exit_code = None;
      conns_lock = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait t =
  locked t.state_lock (fun () ->
      while t.exit_code = None do
        Condition.wait t.exit_cond t.state_lock
      done;
      Option.get t.exit_code)

let stop ?reason t =
  ignore (request_shutdown ?reason t);
  let code = wait t in
  Option.iter Thread.join t.accept_thread;
  (try Unix.close t.wake_r with _ -> ());
  (try Unix.close t.wake_w with _ -> ());
  Pool.shutdown t.pool;
  code

let stats t = stats_json t
