(** Seeded service-level chaos plans for the serve daemon — the same
    plan/digest design as {!Cm.Fault}, lifted from the machine to the
    service: a spec is a tiny string grammar, instantiation is a pure
    function of (spec, seed), and the canonical rendering names the
    run so a chaotic soak is reproducible byte for byte.

    Grammar (tokens separated by [';'] or [','], order-insensitive):
    {v
      seed=N      LCG seed (default 1)
      horizon=N   events are drawn over serials 0..N-1 (default 1000)
      resets=N    N socket resets: the connection is torn down at a
                  drawn frame serial, as if the peer vanished
      frames=N    N truncated frames: the writer emits a partial line
                  then tears the connection (torn-write simulation)
      slow=N      N slow-reader stalls: the writer sleeps before a
                  drawn frame (client backpressure simulation)
      disk=N      N cache-disk write failures: the next N report
                  persists fail as if the disk were full
      crash=N     N worker-crash simulations: a running job is thrown
                  back on the queue with no report, exercising the
                  journal's zero-lost / zero-duplicated guarantee
    v}

    Each category draws its own serial set from the shared LCG stream
    and keeps its own atomic trigger counter: the k-th frame written,
    k-th frame dispatched, k-th disk write, k-th job start each
    consult their category independently, so a plan's behaviour does
    not depend on scheduling interleavings more than the counters
    themselves do. *)

type spec
type t

val empty : spec
val is_empty : spec -> bool

val parse : string -> (spec, string) result
(** Parse the grammar above; [Error] names the offending token. *)

val spec_string : spec -> string
(** Canonical rendering; [parse >> spec_string] is a fixpoint. *)

val instantiate : spec -> t
(** Draw the per-category serial sets and reset the trigger counters. *)

val canonical : t -> string

(** Each [fires_*] call advances that category's trigger counter by
    one and reports whether the drawn plan schedules an event at that
    serial.  Thread-safe; counts [ucd.chaos.<category>] on [obs] when
    it fires. *)

val fires_reset : t -> obs:Obs.t -> bool
val fires_frame : t -> obs:Obs.t -> bool

val fires_slow : t -> obs:Obs.t -> float option
(** The stall length in seconds (drawn in [0.01, 0.11)) when it fires. *)

val fires_disk : t -> obs:Obs.t -> bool
val fires_crash : t -> obs:Obs.t -> bool

val fired : t -> (string * int) list
(** Per-category fire counts so far, sorted by name — the soak harness
    asserts the plan actually did something. *)
