open Ast

type layout =
  | Default
  | Shifted of int array
  | Folded of int
  | Copied of int

(* pull the affine offset out of a permute target subscript: i, i+c, i-c *)
let affine_offset e =
  match e.e with
  | Evar _ -> 0
  | Ebin (Add, { e = Evar _; _ }, c) -> Sema.const_eval c
  | Ebin (Sub, { e = Evar _; _ }, c) -> -Sema.const_eval c
  | _ -> Loc.error e.eloc "permute subscripts must be affine (i, i + c, i - c)"

let of_program prog =
  (* global array dims, for validating fold/copy declarations at their
     source location rather than as an Invalid_argument deep inside
     address generation.  Dims that are not compile-time constants are
     skipped (the layout machinery only ever sees constant-dim globals,
     so there is nothing to check). *)
  let global_dims =
    List.concat_map
      (function
        | Tdecl (Dvar (_, ds)) ->
            List.filter_map
              (fun d ->
                match d.ddims with
                | [] -> None
                | dims -> (
                    try Some (d.dname, List.map Sema.const_eval dims)
                    with _ -> None))
              ds
        | _ -> [])
      prog
  in
  let global_scalars =
    List.concat_map
      (function
        | Tdecl (Dvar (_, ds)) ->
            List.filter_map
              (fun d -> if d.ddims = [] then Some d.dname else None)
              ds
        | _ -> [])
      prog
  in
  let table = ref [] in
  let add name loc layout =
    if List.mem_assoc name !table then
      Loc.error loc "array %s already has a mapping" name;
    table := (name, layout) :: !table
  in
  List.iter
    (function
      | Tmap m ->
          List.iter
            (fun mapping ->
              match mapping with
              | Mpermute pm ->
                  let offs =
                    Array.of_list (List.map affine_offset pm.ptsubs)
                  in
                  if Array.exists (fun c -> c <> 0) offs then
                    add pm.ptarget pm.mloc (Shifted offs)
                  (* a zero-offset permute is the default layout *)
              | Mfold (name, factor, loc) ->
                  if List.mem name global_scalars then
                    Loc.error loc
                      "cannot fold scalar %s: fold needs an array with a \
                       leading dimension"
                      name;
                  if factor <= 0 then
                    Loc.error loc "fold factor must be positive (got %d)"
                      factor;
                  (match List.assoc_opt name global_dims with
                  | Some (d0 :: _) when d0 mod factor <> 0 ->
                      Loc.error loc
                        "fold factor %d does not divide the leading \
                         dimension %d of array %s"
                        factor d0 name
                  | _ -> ());
                  add name loc (Folded factor)
              | Mcopy (name, n, loc) ->
                  let count = Sema.const_eval n in
                  if List.mem name global_scalars then
                    Loc.error loc "cannot copy scalar %s: copy needs an array"
                      name;
                  if count < 1 then
                    Loc.error loc "copy count must be at least 1 (got %d)"
                      count;
                  add name loc (Copied count))
            m.mmappings
      | Tdecl _ | Tfunc _ -> ())
    prog;
  !table

let physical_dims layout dims =
  match layout, dims with
  | Default, _ | Shifted _, _ -> dims
  | Folded f, d0 :: rest ->
      if d0 mod f <> 0 then invalid_arg "Mapping.physical_dims: fold factor";
      (d0 / f) :: f :: rest
  | Folded _, [] -> invalid_arg "Mapping.physical_dims: fold of a scalar"
  | Copied m, _ -> m :: dims

let pos_mod x n = ((x mod n) + n) mod n

let physical_index layout dims coords =
  let linear dims coords =
    List.fold_left2 (fun acc d c -> (acc * d) + c) 0 dims coords
  in
  match layout with
  | Default -> linear dims coords
  | Shifted offs ->
      let shifted =
        List.mapi (fun k c -> pos_mod (c - offs.(k)) (List.nth dims k)) coords
      in
      linear dims shifted
  | Folded f -> (
      match dims, coords with
      | d0 :: drest, c0 :: crest ->
          let h = d0 / f in
          linear ((h :: f :: drest)) ((c0 mod h) :: (c0 / h) :: crest)
      | _ -> invalid_arg "Mapping.physical_index: fold rank")
  | Copied _ ->
      (* copy 0 *)
      linear dims coords

let axis_offset layout axis =
  match layout with
  | Shifted offs when axis < Array.length offs -> offs.(axis)
  | _ -> 0
