open Ast

type layout =
  | Default
  | Shifted of int array
  | Folded of int
  | Copied of int

type step =
  | Permute of int array
  | Fold of int
  | Copy of int

type table = (string * layout) list

(* ---------------- layout IR ---------------- *)

let normalize = function
  | Shifted offs when Array.for_all (fun c -> c = 0) offs -> Default
  | Folded 1 -> Default
  | Copied 1 -> Default
  | l -> l

let equal a b =
  match normalize a, normalize b with
  | Default, Default -> true
  | Shifted x, Shifted y -> x = y
  | Folded x, Folded y -> x = y
  | Copied x, Copied y -> x = y
  | _ -> false

let steps l =
  match normalize l with
  | Default -> []
  | Shifted offs -> [ Permute offs ]
  | Folded f -> [ Fold f ]
  | Copied m -> [ Copy m ]

(* compose one more mapping step onto an existing layout.  Same-kind
   steps merge (shifts add, folds and copies multiply); the backend
   lays an array out in exactly one way, so cross-kind compositions are
   rejected rather than silently dropped. *)
let compose l step =
  let ok l = Ok (normalize l) in
  match normalize l, step with
  | Default, Permute offs -> ok (Shifted offs)
  | Default, Fold f -> ok (Folded f)
  | Default, Copy m -> ok (Copied m)
  | Shifted a, Permute b when Array.length a = Array.length b ->
      ok (Shifted (Array.mapi (fun k c -> c + b.(k)) a))
  | Shifted _, Permute _ -> Error "permute ranks differ"
  | Folded f, Fold g -> ok (Folded (f * g))
  | Copied m, Copy k -> ok (Copied (m * k))
  | _ ->
      Error
        "unsupported layout composition: an array is permuted, folded or \
         copied, not a mix"

let of_steps ss =
  List.fold_left
    (fun acc s -> Result.bind acc (fun l -> compose l s))
    (Ok Default) ss

let to_string l =
  match normalize l with
  | Default -> "default"
  | Shifted offs ->
      let s =
        Array.to_list offs
        |> List.map (fun c -> if c > 0 then Printf.sprintf "+%d" c else string_of_int c)
        |> String.concat ","
      in
      Printf.sprintf "permute[%s]" s
  | Folded f -> Printf.sprintf "fold by %d" f
  | Copied m -> Printf.sprintf "copy along %d" m

let find table name =
  match List.assoc_opt name table with
  | Some l -> normalize l
  | None -> Default

let canonical table =
  table
  |> List.map (fun (n, l) -> (n, normalize l))
  |> List.filter (fun (_, l) -> l <> Default)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let table_to_string table =
  canonical table
  |> List.map (fun (n, l) -> Printf.sprintf "%s:%s" n (to_string l))
  |> String.concat ";"

let digest table = Digest.to_hex (Digest.string (table_to_string table))

(* ---------------- from the program's map sections ---------------- *)

(* pull the affine offset out of a permute target subscript: i, i+c, i-c *)
let affine_offset e =
  match e.e with
  | Evar _ -> 0
  | Ebin (Add, { e = Evar _; _ }, c) -> Sema.const_eval c
  | Ebin (Sub, { e = Evar _; _ }, c) -> -Sema.const_eval c
  | _ -> Loc.error e.eloc "permute subscripts must be affine (i, i + c, i - c)"

let of_program prog =
  (* global array dims, for validating fold/copy declarations at their
     source location rather than as an Invalid_argument deep inside
     address generation.  Dims that are not compile-time constants are
     skipped (the layout machinery only ever sees constant-dim globals,
     so there is nothing to check). *)
  let global_dims =
    List.concat_map
      (function
        | Tdecl (Dvar (_, ds)) ->
            List.filter_map
              (fun d ->
                match d.ddims with
                | [] -> None
                | dims -> (
                    try Some (d.dname, List.map Sema.const_eval dims)
                    with _ -> None))
              ds
        | _ -> [])
      prog
  in
  let global_scalars =
    List.concat_map
      (function
        | Tdecl (Dvar (_, ds)) ->
            List.filter_map
              (fun d -> if d.ddims = [] then Some d.dname else None)
              ds
        | _ -> [])
      prog
  in
  (* every mapping site, in program order; conflicts are diagnosed after
     the whole program has been scanned so one error names them all *)
  let sites = ref [] in
  let add name loc layout = sites := (name, loc, layout) :: !sites in
  List.iter
    (function
      | Tmap m ->
          List.iter
            (fun mapping ->
              match mapping with
              | Mpermute pm ->
                  let offs =
                    Array.of_list (List.map affine_offset pm.ptsubs)
                  in
                  if Array.exists (fun c -> c <> 0) offs then
                    add pm.ptarget pm.mloc (Shifted offs)
                  (* a zero-offset permute is the default layout *)
              | Mfold (name, factor, loc) ->
                  if List.mem name global_scalars then
                    Loc.error loc
                      "cannot fold scalar %s: fold needs an array with a \
                       leading dimension"
                      name;
                  if factor <= 0 then
                    Loc.error loc "fold factor must be positive (got %d)"
                      factor;
                  (match List.assoc_opt name global_dims with
                  | Some (d0 :: _) when d0 mod factor <> 0 ->
                      Loc.error loc
                        "fold factor %d does not divide the leading \
                         dimension %d of array %s"
                        factor d0 name
                  | _ -> ());
                  add name loc (Folded factor)
              | Mcopy (name, n, loc) ->
                  let count = Sema.const_eval n in
                  if List.mem name global_scalars then
                    Loc.error loc "cannot copy scalar %s: copy needs an array"
                      name;
                  if count < 1 then
                    Loc.error loc "copy count must be at least 1 (got %d)"
                      count;
                  add name loc (Copied count))
            m.mmappings
      | Tdecl _ | Tfunc _ -> ())
    prog;
  let sites = List.rev !sites in
  let conflicting =
    List.filter_map
      (fun (name, _, _) ->
        match List.filter (fun (n, _, _) -> n = name) sites with
        | _ :: _ :: _ as dups -> Some (name, dups)
        | _ -> None)
      sites
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  (match conflicting with
  | [] -> ()
  | conflicts ->
      (* report every conflicting site in one pass, with the competing
         layouts, anchored at the first re-mapping site *)
      let describe (name, dups) =
        Printf.sprintf "%s <- %s" name
          (String.concat ", "
             (List.map
                (fun (_, loc, l) ->
                  Format.asprintf "%s at %a" (to_string l) Loc.pp loc)
                dups))
      in
      let first_dup_loc =
        let seen = Hashtbl.create 8 in
        let rec go = function
          | [] -> Loc.dummy
          | (n, loc, _) :: rest ->
              if Hashtbl.mem seen n then loc
              else (Hashtbl.add seen n true; go rest)
        in
        go sites
      in
      Loc.error first_dup_loc
        "conflicting mappings for %d array%s: %s"
        (List.length conflicts)
        (if List.length conflicts = 1 then "" else "s")
        (String.concat "; " (List.map describe conflicts)));
  List.map (fun (name, _, l) -> (name, l)) sites

(* ---------------- back to UC source ---------------- *)

let global_sets prog =
  List.concat_map
    (function
      | Tdecl (Dindexset defs) ->
          List.map (fun def -> (def.set_name, def.elem_name)) defs
      | _ -> [])
    prog

let emit_map_section prog table =
  match canonical table with
  | [] -> None
  | entries ->
      let sets = global_sets prog in
      (match sets with
      | [] ->
          invalid_arg
            "Mapping.emit_map_section: program declares no index sets"
      | _ -> ());
      let set_for_axis k =
        (* cosmetic: spread distinct sets over the axes when there are
           enough, otherwise reuse; any global set is legal here *)
        List.nth sets (min k (List.length sets - 1))
      in
      let dummy_e d = { e = d; eloc = Loc.dummy } in
      let mappings =
        List.map
          (fun (name, l) ->
            match l with
            | Default -> assert false
            | Shifted offs ->
                let axes = Array.to_list (Array.mapi (fun k c -> (k, c)) offs) in
                let pmsets =
                  List.sort_uniq compare
                    (List.map (fun (k, _) -> fst (set_for_axis k)) axes)
                in
                let ptsubs =
                  List.map
                    (fun (k, c) ->
                      let elem = dummy_e (Evar (snd (set_for_axis k))) in
                      if c = 0 then elem
                      else if c > 0 then dummy_e (Ebin (Add, elem, dummy_e (Eint c)))
                      else dummy_e (Ebin (Sub, elem, dummy_e (Eint (-c)))))
                    axes
                in
                let pssubs = List.map (fun (k, _) -> snd (set_for_axis k)) axes in
                Mpermute
                  {
                    pmsets;
                    ptarget = name;
                    ptsubs;
                    psource = name;
                    pssubs;
                    mloc = Loc.dummy;
                  }
            | Folded f -> Mfold (name, f, Loc.dummy)
            | Copied m -> Mcopy (name, dummy_e (Eint m), Loc.dummy))
          entries
      in
      let msets =
        let used =
          List.concat_map
            (function Mpermute pm -> pm.pmsets | _ -> []) mappings
        in
        match List.sort_uniq compare used with
        | [] -> [ fst (List.hd sets) ]
        | us -> us
      in
      Some
        (Format.asprintf "%a" Pretty.pp_program
           [ Tmap { msets; mmappings = mappings } ])

(* ---------------- physical addressing ---------------- *)

let physical_dims layout dims =
  match layout, dims with
  | Default, _ | Shifted _, _ -> dims
  | Folded f, d0 :: rest ->
      if d0 mod f <> 0 then invalid_arg "Mapping.physical_dims: fold factor";
      (d0 / f) :: f :: rest
  | Folded _, [] -> invalid_arg "Mapping.physical_dims: fold of a scalar"
  | Copied m, _ -> m :: dims

let pos_mod x n = ((x mod n) + n) mod n

let physical_index layout dims coords =
  let linear dims coords =
    List.fold_left2 (fun acc d c -> (acc * d) + c) 0 dims coords
  in
  match layout with
  | Default -> linear dims coords
  | Shifted offs ->
      let shifted =
        List.mapi (fun k c -> pos_mod (c - offs.(k)) (List.nth dims k)) coords
      in
      linear dims shifted
  | Folded f -> (
      match dims, coords with
      | d0 :: drest, c0 :: crest ->
          let h = d0 / f in
          linear ((h :: f :: drest)) ((c0 mod h) :: (c0 / h) :: crest)
      | _ -> invalid_arg "Mapping.physical_index: fold rank")
  | Copied _ ->
      (* copy 0 *)
      linear dims coords

let axis_offset layout axis =
  match layout with
  | Shifted offs when axis < Array.length offs -> offs.(axis)
  | _ -> 0
