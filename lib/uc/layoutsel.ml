open Commpat

(* Layout optimizer (the back half of `ucc tune`).

   Enumerates candidate layouts per array and scores each one
   *statically* against the calibrated cost model: every communication
   event recorded by Commpat is re-classified under the candidate and
   charged to a fresh Cm.Cost meter exactly the way the machine would
   charge the corresponding Paris instruction.  No program is lowered
   or run.

   The per-array search is independent because the objective is
   separable: an event's cost depends only on the layout of the array
   it touches, so the argmin over a table decomposes into one argmin
   per array.  Default is always a candidate, which makes the chosen
   table's predicted cost never worse than the default's. *)

type choice = {
  cname : string;
  cdims : int list;
  clayout : Mapping.layout;
  crationale : string;
  cdefault_ns : float; (* predicted comm cost of this array's events *)
  cchosen_ns : float;
}

type result = {
  table : Mapping.table; (* canonical: non-default entries only *)
  choices : choice list; (* every global array, in declaration order *)
  summary : Commpat.summary;
  chosen_prediction : Commpat.prediction;
  default_prediction : Commpat.prediction;
  chosen_ns : float; (* whole-program predicted communication ns *)
  default_ns : float;
}

(* ---------------- static scoring ---------------- *)

(* rough PE charge for the address arithmetic a general access needs;
   keeps the model honest about layouts that trade router ops for
   heavier address computation (fold's div/mod split, copy's spread) *)
let address_pe_ops layout rank =
  let base = 1 + (2 * rank) in
  match layout with
  | Mapping.Default -> base
  | Mapping.Shifted offs ->
      base + (3 * Array.fold_left (fun n o -> if o <> 0 then n + 1 else n) 0 offs)
  | Mapping.Folded _ -> base + 4
  | Mapping.Copied _ -> base + 6

let charge_n f n = for _ = 1 to n do f () done

(* charge one event under [table] to [m]; mirrors Machine.exec_pget /
   exec_psend / exec_pnews charging *)
let charge_event params m ~news_opt table ev =
  match ev with
  | Access a -> (
      let layout = Mapping.find table a.aname in
      let size = List.fold_left ( * ) 1 a.aspace in
      match pat_of ~news_opt a layout with
      | Local -> ()
      | News _ -> charge_n (fun () -> Cm.Cost.charge_news m ~size) a.atrips
      | Router ->
          let messages, max_fanin = estimate_fanin a layout in
          let messages = max 1 messages in
          let copies =
            match a.arw, layout with
            | `Write, Mapping.Copied c -> c
            | _ -> 1
          in
          let rank = List.length a.adims in
          charge_n
            (fun () ->
              charge_n (fun () -> Cm.Cost.charge_pe m ~size)
                (address_pe_ops layout rank);
              for _ = 1 to copies do
                (* writes check-combine at their real fan-in; a read's
                   gather also pays its fan-in serialization *)
                Cm.Cost.charge_router m ~size ~messages ~max_fanin
              done)
            a.atrips)
  | Activity { trips; size; _ } ->
      charge_n
        (fun () -> Cm.Cost.charge_router m ~size ~messages:size ~max_fanin:1)
        trips
  | Hist_send { trips; isize; _ } ->
      (* combining send: fan-in 1 by construction *)
      charge_n
        (fun () ->
          Cm.Cost.charge_router m ~size:isize ~messages:isize ~max_fanin:1)
        trips
  | Fe_access { fename; ferw; fetrips } ->
      let layout = Mapping.find table fename in
      let copies =
        match ferw, layout with `Write, Mapping.Copied c -> c | _ -> 1
      in
      ignore params;
      charge_n (fun () -> Cm.Cost.charge_fe_cm m) (fetrips * copies)

(* predicted communication cost (simulated ns) of [events] under [table] *)
let score ?(params = Cm.Cost.cm2_16k) summary table events =
  let m = Cm.Cost.meter params in
  let news_opt = summary.options.Codegen.news_opt in
  List.iter (charge_event params m ~news_opt table) events;
  m.Cm.Cost.elapsed_ns

(* ---------------- candidate enumeration ---------------- *)

let touches name = function
  | Access a -> a.aname = name
  | Fe_access f -> f.fename = name
  | Activity _ -> false
  | Hist_send h -> h.count = name

(* offset vectors of aligned-candidate-shaped accesses: making one of
   them the layout turns those sites local *)
let shift_candidates name dims events =
  let rank = List.length dims in
  let vectors = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Access a
        when a.aname = name && a.adims = a.aspace
             && List.length a.asubs = rank ->
          let affine =
            List.mapi
              (fun k sub ->
                match sub with
                | Saffine (ax, off) when ax = k -> Some off
                | _ -> None)
              a.asubs
          in
          if List.for_all Option.is_some affine then begin
            let v = Array.of_list (List.map Option.get affine) in
            if Array.exists (fun o -> o <> 0) v && not (List.mem v !vectors)
            then vectors := v :: !vectors
          end
      | _ -> ())
    events;
  List.rev_map (fun v -> Mapping.Shifted v) !vectors

let copy_candidates name events =
  (* replication only pays when some read gathers with high fan-in *)
  let worth =
    List.exists
      (function
        | Access a when a.aname = name && a.arw = `Read -> (
            match classify ~news_opt:true a Mapping.Default with
            | Router ->
                let _, fanin = estimate_fanin a Mapping.Default in
                fanin >= 2
            | _ -> false)
        | _ -> false)
      events
  in
  if worth then List.map (fun c -> Mapping.Copied c) [ 2; 4; 8 ] else []

let fold_candidates dims =
  match dims with
  | d0 :: _ when d0 mod 2 = 0 && d0 >= 4 -> [ Mapping.Folded 2 ]
  | _ -> []

(* ---------------- search ---------------- *)

let describe_layout name = function
  | Mapping.Default -> Printf.sprintf "%s stays on the default layout" name
  | l -> Printf.sprintf "%s remapped: %s" name (Mapping.to_string l)

let search_summary ?(params = Cm.Cost.cm2_16k) (summary : Commpat.summary) :
    result =
  let hist_targets =
    List.filter_map
      (function Hist_send h -> Some h.count | _ -> None)
      summary.events
  in
  let choices =
    List.map
      (fun (name, dims) ->
        let events = List.filter (touches name) summary.events in
        let cost layout = score ~params summary [ (name, layout) ] events in
        let default_ns = cost Mapping.Default in
        if List.mem name hist_targets then
          {
            cname = name;
            cdims = dims;
            clayout = Mapping.Default;
            crationale =
              "pinned: histogram combining-send target needs the default \
               layout";
            cdefault_ns = default_ns;
            cchosen_ns = default_ns;
          }
        else begin
          let candidates =
            Mapping.Default
            :: (shift_candidates name dims summary.events
               @ fold_candidates dims @ copy_candidates name summary.events)
          in
          let best_layout, best_ns =
            List.fold_left
              (fun (bl, bns) l ->
                let ns = cost l in
                (* strict improvement only: ties keep the simpler layout *)
                if ns < bns -. 1e-9 then (l, ns) else (bl, bns))
              (Mapping.Default, default_ns)
              (List.tl candidates)
          in
          let rationale =
            if best_layout = Mapping.Default then
              if events = [] then "unused in communication; default kept"
              else if default_ns = 0. then
                "every access local under the default layout"
              else
                Printf.sprintf
                  "default kept: no candidate beat %.3f ms predicted"
                  (default_ns /. 1e6)
            else
              Printf.sprintf "%s (predicted %.3f ms -> %.3f ms)"
                (describe_layout name best_layout)
                (default_ns /. 1e6) (best_ns /. 1e6)
          in
          {
            cname = name;
            cdims = dims;
            clayout = best_layout;
            crationale = rationale;
            cdefault_ns = default_ns;
            cchosen_ns = best_ns;
          }
        end)
      summary.arrays
  in
  let table =
    Mapping.canonical (List.map (fun c -> (c.cname, c.clayout)) choices)
  in
  {
    table;
    choices;
    summary;
    chosen_prediction = predict summary table;
    default_prediction = predict summary [];
    chosen_ns = score ~params summary table summary.events;
    default_ns = score ~params summary [] summary.events;
  }

(* The walk runs under the all-default table: `ucc tune` synthesizes a
   map section from scratch, ignoring any the program already has. *)
let search ?(options = Codegen.default_options) ?params prog =
  search_summary ?params (Commpat.analyze ~options ~layouts:[] prog)

let search_source ?(options = Codegen.default_options) ?params src =
  search_summary ?params (Commpat.analyze_source ~options ~layouts:[] src)
