(** Code generation: UC abstract syntax to {!Cm.Paris} programs.

    Expects input already processed by {!Transform} (no user functions
    other than [main], no [solve]).  The lowering follows the CM execution
    model:

    - every distinct activity-space shape gets one VP set; conforming
      arrays share the VP set of their shape (the paper's default
      mapping), so an identity access [a[i]] is a local operation;
    - [st] predicates, [if], SIMD [while] and the short-circuit operators
      become context (activity-flag) manipulation; sub-expressions that
      could fault or perform [rand] are evaluated under the narrowed
      context, which reproduces C's short-circuit semantics elementwise;
    - nested constructs and reductions expand the activity space: the
      ambient activity is read out of the context ([Cread]) and fetched
      into the product space through the router, element values are
      recomputed from coordinates, and nested reductions finish with an
      axis reduction back onto the ambient space;
    - a parallel assignment evaluates its right-hand side in full before
      committing (two-phase), with identity-aligned accesses lowered to
      local field operations and everything else to router traffic with
      the checking combiner (the "one value per variable" rule);
    - map-section layouts ({!Mapping}) change the address arithmetic
      only. *)

type options = {
  news_opt : bool;      (** turn static-safe unit-offset accesses into NEWS shifts *)
  procopt : bool;       (** histogram processor optimization (paper section 4) *)
  use_mappings : bool;  (** honour map sections *)
  cse : bool;           (** reuse pure parallel sub-expressions (common
                            sub-expression detection, paper section 4) *)
  ir_opt : Cm.Iropt.config;
                        (** Paris-IR pass pipeline run on the lowered
                            program ({!Cm.Iropt.run}); named arrays and
                            scalars are the liveness roots *)
}

val default_options : options

type array_meta = {
  afield : int;
  aty : Ast.base_ty;
  adims : int list;
  alayout : Mapping.layout;
}

type scalar_meta = { sreg : int; sty : Ast.base_ty }

type compiled = {
  prog : Cm.Paris.program;
  carrays : (string * array_meta) list;
  cscalars : (string * scalar_meta) list;
}

(** [compile program] lowers a checked, transformed program.  [layouts]
    is the single seam through which layout information enters
    lowering: when given (normalized on entry), it replaces the
    program's own map sections — this is how [ucc tune] lowers with a
    synthesized {!Mapping.table}; when absent, the table comes from
    {!Mapping.of_program} unless [use_mappings] is off.  [obs]
    (default {!Obs.null}) is passed to the IR optimizer, which reports
    its per-pass statistics as ["iropt."]-prefixed counters (the
    surface behind [ucc --ir-opt-stats]).
    @raise Loc.Error on unsupported constructs. *)
val compile :
  ?layouts:Mapping.table ->
  ?options:options ->
  ?obs:Obs.t ->
  Ast.program ->
  compiled
