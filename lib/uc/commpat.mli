(** Static communication-pattern analysis (paper section 4's cost
    reasoning, made a compiler stage).

    Walks a transformed, constant-folded program in exactly the order
    {!Codegen} emits instructions and records one {!event} per
    communication-relevant operation — array accesses with their affine
    subscript structure, space-entry activity expansions, histogram
    combining sends, front-end element transfers — together with static
    trip counts.  Each access keeps enough structure to be re-classified
    under {b any} candidate layout, which lets {!Layoutsel} score
    layouts without lowering or running anything.

    Trip counts are exact for counted [for] loops and [seq] nests;
    data-dependent iteration ([*par], [*oneof], [*seq], SIMD [while],
    front-end [while], non-constant [if]) is estimated and flagged. *)

(** The classification lattice: [Local] < [News _] < [Router]. *)
type pat =
  | Local           (** same-processor field access: no communication *)
  | News of int * int  (** grid shift by [delta] along [axis]: one NEWS op *)
  | Router          (** general communication: one router op *)

type sub =
  | Saffine of int * int  (** space axis, constant offset *)
  | Sopaque of (int array -> int) option
      (** pure-index evaluator over space coordinates, when available *)

type access = {
  aname : string;
  aloc : Loc.t;
  arw : [ `Read | `Write ];
  adims : int list;         (** logical dims of the array *)
  asubs : sub list;
  aspace : int list;        (** dims of the activity space *)
  avalues : int array list; (** per space axis, the element values *)
  atrips : int;             (** static execution count *)
  aapprox : bool;           (** trip count was estimated *)
}

type event =
  | Access of access
  | Activity of { trips : int; size : int; approx : bool }
      (** ambient-activity expansion on space entry: one router op *)
  | Hist_send of { count : string; trips : int; isize : int; approx : bool }
      (** histogram processor optimization: one combining send *)
  | Fe_access of {
      fename : string;
      ferw : [ `Read | `Write ];
      fetrips : int;
    }  (** front-end element transfer; writes replicate under [Copied] *)

type summary = {
  events : event list;                 (** in emission order *)
  arrays : (string * int list) list;   (** global arrays and their dims *)
  sets : (string * int array) list;    (** global index sets' values *)
  options : Codegen.options;
  base_layouts : Mapping.table;        (** table the walk ran under *)
  had_dynamic : bool;                  (** some trip count was estimated *)
}

(** Assumed iteration count for data-dependent loops. *)
val dynamic_trips : int

(** Re-classify a {b read} access under a candidate layout; mirrors
    Codegen's access planner (NEWS needs the plain layout, a single
    unit-or-double offset and [news_opt]). *)
val classify : news_opt:bool -> access -> Mapping.layout -> pat

(** Writes never use NEWS: [Local] exactly when fully aligned,
    [Router] otherwise. *)
val classify_write : news_opt:bool -> access -> Mapping.layout -> pat

(** {!classify} or {!classify_write} according to the access's kind. *)
val pat_of : news_opt:bool -> access -> Mapping.layout -> pat

type prediction = {
  p_router_ops : int;
  p_news_ops : int;
  p_exact : bool;
      (** no estimated-trip event contributed a nonzero count *)
}

(** Predicted router/NEWS operation counts under a layout table.  On
    programs with static control flow these match the machine's meter
    ([router_ops]/[news_ops]) exactly. *)
val predict : summary -> Mapping.table -> prediction

(** [(messages, max_fanin)] of a router access under a layout,
    estimated by evaluating the subscripts over every space point
    (capped; falls back to fan-in 1 when a subscript depends on runtime
    values). *)
val estimate_fanin : access -> Mapping.layout -> int * int

(** Analyze a transformed, constant-folded program (the exact input
    {!Codegen.compile} takes).  [layouts] defaults through the same
    seam as lowering: the program's own map sections when
    [use_mappings], the default layout otherwise.
    @raise Loc.Error on programs Codegen would reject. *)
val analyze :
  ?options:Codegen.options -> ?layouts:Mapping.table -> Ast.program -> summary

(** Parse, check, transform, fold, then {!analyze}. *)
val analyze_source :
  ?options:Codegen.options -> ?layouts:Mapping.table -> string -> summary

val pat_to_string : pat -> string
