(** Data-mapping analysis (paper section 4).

    The map section declares how arrays are laid out on the machine
    without touching program logic.  This module turns the declarations
    into per-array {!layout} values; {!Codegen} consults them when
    computing element addresses, and result extraction uses
    {!physical_index} to unscramble stored data.

    - [Shifted offs]: from [permute (I) b[i+c] :- a[i]]; element [x] of
      the target lives in slot [(x - c) mod n] (cyclic), so an access
      [b[i+c]] lands on the same processor as [a[i]].
    - [Folded f]: the leading axis is folded by [f]: element [x0] lives
      at physical coordinates [(x0 mod h, x0 / h)] with [h = n0 / f], so
      [a[i]] and [a[i + h]] become grid neighbours (the paper co-locates
      them on one processor; the simulator's nearest equivalent is
      adjacency on the NEWS grid).
    - [Copied m]: the array is replicated along a new leading axis of
      extent [m]; reads are spread across copies to reduce router
      congestion and writes update every copy. *)

type layout =
  | Default
  | Shifted of int array
  | Folded of int
  | Copied of int

(** Per-array layouts implied by the program's map sections.  Arrays not
    mentioned get no entry (treat as [Default]).
    @raise Loc.Error at the map-section site on conflicting mappings for
    one array, a fold of a scalar, a non-positive fold factor, a fold
    factor that does not divide the array's leading dimension, a copy of
    a scalar, or a copy count below 1. *)
val of_program : Ast.program -> (string * layout) list

(** Physical geometry of an array with the given logical dims. *)
val physical_dims : layout -> int list -> int list

(** [physical_index layout dims coords] maps logical coordinates to the
    flat physical index (for [Copied], the index of copy 0). *)
val physical_index : layout -> int list -> int list -> int

(** [axis_offset layout axis] is the cyclic shift applied on [axis]
    ([Shifted] only; 0 otherwise). *)
val axis_offset : layout -> int -> int
