(** Layout IR (paper section 4).

    The map section declares how arrays are laid out on the machine
    without touching program logic.  This module is the compiler's
    layout intermediate representation: a typed per-array description
    built either from the program's own map sections
    ({!of_program}) or synthesized by the auto-tuner
    ({!Layoutsel.tune}), normalized, digestable, and printable back to
    a UC [map] section.  {!Codegen.compile} consumes a {!table} through
    its [?layouts] seam; result extraction uses {!physical_index} to
    unscramble stored data.

    - [Shifted offs]: from [permute (I) b[i+c] :- a[i]]; element [x] of
      the target lives in slot [(x - c) mod n] (cyclic), so an access
      [b[i+c]] lands on the same processor as [a[i]].
    - [Folded f]: the leading axis is folded by [f]: element [x0] lives
      at physical coordinates [(x0 mod h, x0 / h)] with [h = n0 / f], so
      [a[i]] and [a[i + h]] become grid neighbours (the paper co-locates
      them on one processor; the simulator's nearest equivalent is
      adjacency on the NEWS grid).
    - [Copied m]: the array is replicated along a new leading axis of
      extent [m]; reads are spread across copies to reduce router
      congestion and writes update every copy. *)

type layout =
  | Default
  | Shifted of int array
  | Folded of int
  | Copied of int

(** One mapping step as written in a map section; a layout is the
    normalized composition of the steps that mention one array. *)
type step =
  | Permute of int array
  | Fold of int
  | Copy of int

(** Per-array layout table: the unit handed to {!Codegen.compile}.
    Arrays not mentioned get no entry (treat as [Default]). *)
type table = (string * layout) list

(** Canonical form: all-zero shifts, [fold by 1] and [copy along 1] are
    the identity mapping and collapse to [Default]. *)
val normalize : layout -> layout

(** Structural equality of normalized layouts. *)
val equal : layout -> layout -> bool

(** Decompose a layout into its mapping steps ([Default] = []). *)
val steps : layout -> step list

(** [compose l step] folds one more mapping step onto [l]; same-kind
    steps merge (shifts add, fold factors and copy counts multiply),
    cross-kind compositions are [Error] because the backend lays an
    array out exactly one way. *)
val compose : layout -> step -> (layout, string) result

(** Normalize a whole composition chain, outermost first. *)
val of_steps : step list -> (layout, string) result

(** Human-readable, e.g. ["permute[+1]"], ["fold by 2"]. *)
val to_string : layout -> string

(** Layout of [name] in the table, normalized; [Default] when absent. *)
val find : table -> string -> layout

(** Normalize a table: drop entries that normalize to [Default], sort
    by array name. *)
val canonical : table -> table

(** Canonical one-line rendering of a table (sorted, defaults
    dropped) — the pre-image of {!digest}. *)
val table_to_string : table -> string

(** Content digest of the canonical table, for job digests and caching:
    two tables that lay every array out identically share a digest. *)
val digest : table -> string

(** Per-array layouts implied by the program's map sections.
    @raise Loc.Error on conflicting mappings for an array — the message
    lists {e every} conflicting site with the competing layouts — and at
    the map-section site for a fold of a scalar, a non-positive fold
    factor, a fold factor that does not divide the array's leading
    dimension, a copy of a scalar, or a copy count below 1. *)
val of_program : Ast.program -> table

(** Render a table back to UC source: a [map] section that re-parses,
    round-trips through {!Pretty}, and reproduces the table via
    {!of_program}.  [None] when the table is all-default.  Permute
    subscripts borrow element names from the program's global index
    sets.
    @raise Invalid_argument when the program declares no index set (no
    legal map-section header can be formed). *)
val emit_map_section : Ast.program -> table -> string option

(** Physical geometry of an array with the given logical dims. *)
val physical_dims : layout -> int list -> int list

(** [physical_index layout dims coords] maps logical coordinates to the
    flat physical index (for [Copied], the index of copy 0). *)
val physical_index : layout -> int list -> int list -> int

(** [axis_offset layout axis] is the cyclic shift applied on [axis]
    ([Shifted] only; 0 otherwise). *)
val axis_offset : layout -> int -> int
