type t = {
  compiled : Codegen.compiled;
  machine : Cm.Machine.t;
}

(* The pipeline is exposed in re-enterable stages so callers (Ucd.Cache)
   can memoize intermediate artifacts: parse once, lower once per option
   set, run once per (options, seed, fuel). *)

let parse_source ?(obs = Obs.null) src =
  let prog = Obs.with_span obs "compile.parse" (fun () -> Parser.parse_program src) in
  Obs.with_span obs "compile.sema" (fun () -> ignore (Sema.check prog));
  prog

let lower ?layouts ?options ?(obs = Obs.null) prog =
  let prog = Obs.with_span obs "compile.transform" (fun () -> Transform.apply prog) in
  let prog = Obs.with_span obs "compile.fold" (fun () -> Optimize.fold_program prog) in
  Obs.with_span obs "compile.codegen" (fun () ->
      Codegen.compile ?layouts ?options ~obs prog)

let compile_source ?layouts ?options ?obs src =
  lower ?layouts ?options ?obs (parse_source ?obs src)

let start_compiled ?cost ?seed ?fuel ?engine ?faults ?obs compiled =
  let machine =
    Cm.Machine.create ?cost ?seed ?fuel ?engine ?faults ?obs
      compiled.Codegen.prog
  in
  { compiled; machine }

let step t ~fuel_slice = Cm.Machine.run_slice t.machine ~fuel_slice
let finished t = Cm.Machine.finished t.machine
let checkpoint t = Cm.Machine.checkpoint t.machine

let restore_compiled ?engine ?faults ?obs compiled data =
  let machine =
    Cm.Machine.restore ?engine ?faults ?obs compiled.Codegen.prog data
  in
  { compiled; machine }

let run_compiled ?cost ?seed ?fuel ?engine ?faults ?obs compiled =
  let t = start_compiled ?cost ?seed ?fuel ?engine ?faults ?obs compiled in
  Cm.Machine.run t.machine;
  t

let run_source ?options ?cost ?seed ?fuel ?engine ?faults ?obs src =
  run_compiled ?cost ?seed ?fuel ?engine ?faults ?obs
    (compile_source ?options ?obs src)

(* "no such name" messages list what does exist, so a CLI typo is a
   one-line fix instead of a round trip through the source *)
let known_names = function
  | [] -> "none"
  | names -> String.concat ", " (List.sort String.compare names)

let meta t name =
  match List.assoc_opt name t.compiled.Codegen.carrays with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "no global array named %S (known arrays: %s)" name
           (known_names (List.map fst t.compiled.Codegen.carrays)))

(* read a field back in logical element order *)
let unscramble (m : Codegen.array_meta) (raw : 'a array) : 'a array =
  let dims = m.Codegen.adims in
  let total = List.fold_left ( * ) 1 dims in
  let g = Cm.Geometry.create dims in
  Array.init total (fun logical ->
      let coords = Array.to_list (Cm.Geometry.coords g logical) in
      raw.(Mapping.physical_index m.Codegen.alayout dims coords))

let int_array t name =
  let m = meta t name in
  unscramble m (Cm.Machine.field_ints t.machine m.Codegen.afield)

let float_array t name =
  let m = meta t name in
  unscramble m (Cm.Machine.field_floats t.machine m.Codegen.afield)

let scalar t name =
  match List.assoc_opt name t.compiled.Codegen.cscalars with
  | Some m -> Cm.Machine.reg t.machine m.Codegen.sreg
  | None ->
      failwith
        (Printf.sprintf "no global scalar named %S (known scalars: %s)" name
           (known_names (List.map fst t.compiled.Codegen.cscalars)))

let output t = Cm.Machine.output t.machine
let elapsed_seconds t = Cm.Machine.elapsed_seconds t.machine
let meter t = Cm.Machine.meter t.machine
