type t = {
  compiled : Codegen.compiled;
  machine : Cm.Machine.t;
}

(* The pipeline is exposed in re-enterable stages so callers (Ucd.Cache)
   can memoize intermediate artifacts: parse once, lower once per option
   set, run once per (options, seed, fuel). *)

let parse_source src =
  let prog = Parser.parse_program src in
  ignore (Sema.check prog);
  prog

let lower ?options prog =
  let prog = Transform.apply prog in
  let prog = Optimize.fold_program prog in
  Codegen.compile ?options prog

let compile_source ?options src = lower ?options (parse_source src)

let start_compiled ?cost ?seed ?fuel ?engine ?faults compiled =
  let machine =
    Cm.Machine.create ?cost ?seed ?fuel ?engine ?faults compiled.Codegen.prog
  in
  { compiled; machine }

let step t ~fuel_slice = Cm.Machine.run_slice t.machine ~fuel_slice
let finished t = Cm.Machine.finished t.machine
let checkpoint t = Cm.Machine.checkpoint t.machine

let restore_compiled ?engine ?faults compiled data =
  let machine =
    Cm.Machine.restore ?engine ?faults compiled.Codegen.prog data
  in
  { compiled; machine }

let run_compiled ?cost ?seed ?fuel ?engine ?faults compiled =
  let t = start_compiled ?cost ?seed ?fuel ?engine ?faults compiled in
  Cm.Machine.run t.machine;
  t

let run_source ?options ?cost ?seed ?fuel ?engine ?faults src =
  run_compiled ?cost ?seed ?fuel ?engine ?faults (compile_source ?options src)

let meta t name =
  match List.assoc_opt name t.compiled.Codegen.carrays with
  | Some m -> m
  | None -> failwith ("no global array named " ^ name)

(* read a field back in logical element order *)
let unscramble (m : Codegen.array_meta) (raw : 'a array) : 'a array =
  let dims = m.Codegen.adims in
  let total = List.fold_left ( * ) 1 dims in
  let g = Cm.Geometry.create dims in
  Array.init total (fun logical ->
      let coords = Array.to_list (Cm.Geometry.coords g logical) in
      raw.(Mapping.physical_index m.Codegen.alayout dims coords))

let int_array t name =
  let m = meta t name in
  unscramble m (Cm.Machine.field_ints t.machine m.Codegen.afield)

let float_array t name =
  let m = meta t name in
  unscramble m (Cm.Machine.field_floats t.machine m.Codegen.afield)

let scalar t name =
  match List.assoc_opt name t.compiled.Codegen.cscalars with
  | Some m -> Cm.Machine.reg t.machine m.Codegen.sreg
  | None -> failwith ("no global scalar named " ^ name)

let output t = Cm.Machine.output t.machine
let elapsed_seconds t = Cm.Machine.elapsed_seconds t.machine
let meter t = Cm.Machine.meter t.machine
