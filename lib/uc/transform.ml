open Ast

(* atomic so concurrent compiles (Ucd domain pool) never mint the same name *)
let counter = Atomic.make 0

let fresh base =
  Printf.sprintf "__%s_%d" base (Atomic.fetch_and_add counter 1 + 1)

(* ---------------- substitution ---------------- *)

(* rename identifiers (locals, params, array params) inside an inlined body *)
let rec subst_expr env e =
  let d =
    match e.e with
    | Evar v -> (
        match List.assoc_opt v env with
        | Some e' -> e'.e
        | None -> Evar v)
    | Eindex (base, subs) ->
        Eindex (subst_expr env base, List.map (subst_expr env) subs)
    | Ebin (op, a, b) -> Ebin (op, subst_expr env a, subst_expr env b)
    | Eun (op, a) -> Eun (op, subst_expr env a)
    | Econd (c, a, b) ->
        Econd (subst_expr env c, subst_expr env a, subst_expr env b)
    | Ecall (f, args) -> Ecall (f, List.map (subst_expr env) args)
    | Ereduce r ->
        Ereduce
          {
            r with
            rbranches =
              List.map
                (fun (p, ex) ->
                  (Option.map (subst_expr env) p, subst_expr env ex))
                r.rbranches;
            rothers = Option.map (subst_expr env) r.rothers;
          }
    | (Eint _ | Efloat _ | Estr _ | Einf) as d -> d
  in
  { e with e = d }

let rec subst_stmt env st =
  let d =
    match st.s with
    | Sexpr e -> Sexpr (subst_expr env e)
    | Sassign (op, l, r) -> Sassign (op, subst_expr env l, subst_expr env r)
    | Sif (c, t, e) ->
        Sif (subst_expr env c, subst_stmt env t, Option.map (subst_stmt env) e)
    | Swhile (c, b) -> Swhile (subst_expr env c, subst_stmt env b)
    | Sfor (i, c, s, b) ->
        Sfor
          ( Option.map (subst_stmt env) i,
            Option.map (subst_expr env) c,
            Option.map (subst_stmt env) s,
            subst_stmt env b )
    | Sblock b -> Sblock (subst_block env b)
    | Sreturn e -> Sreturn (Option.map (subst_expr env) e)
    | Spar ps -> Spar (subst_par env ps)
    | Sseq ps -> Sseq (subst_par env ps)
    | Ssolve ps -> Ssolve (subst_par env ps)
    | Soneof ps -> Soneof (subst_par env ps)
    | (Sempty | Sbreak | Scontinue) as d -> d
  in
  { st with s = d }

and subst_par env ps =
  {
    ps with
    pbranches =
      List.map
        (fun (p, st) -> (Option.map (subst_expr env) p, subst_stmt env st))
        ps.pbranches;
    pothers = Option.map (subst_stmt env) ps.pothers;
  }

and subst_block env b =
  (* declarations in the inlined body were renamed beforehand, so no
     capture is possible here *)
  { bdecls = b.bdecls; bstmts = List.map (subst_stmt env) b.bstmts }

(* ---------------- inlining ---------------- *)

(* Rewrite an expression, hoisting every user-function call into a prelude
   of declarations and statements. *)
let rec inline_expr funcs e : decl list * stmt list * expr =
  let loc = e.eloc in
  match e.e with
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> ([], [], e)
  | Eindex (base, subs) ->
      let ds, ss, subs = inline_list funcs subs in
      (ds, ss, { e with e = Eindex (base, subs) })
  | Ebin (op, a, b) ->
      let ds1, ss1, a = inline_expr funcs a in
      let ds2, ss2, b = inline_expr funcs b in
      (ds1 @ ds2, ss1 @ ss2, { e with e = Ebin (op, a, b) })
  | Eun (op, a) ->
      let ds, ss, a = inline_expr funcs a in
      (ds, ss, { e with e = Eun (op, a) })
  | Econd (c, a, b) ->
      let ds1, ss1, c = inline_expr funcs c in
      let ds2, ss2, a = inline_expr funcs a in
      let ds3, ss3, b = inline_expr funcs b in
      (ds1 @ ds2 @ ds3, ss1 @ ss2 @ ss3, { e with e = Econd (c, a, b) })
  | Ereduce r ->
      (* calls inside reduction branches would have to execute under the
         reduction's own index space; only whole-expression bodies work *)
      let fix (p, ex) =
        let check name ex' =
          let ds, ss, ex'' = inline_expr funcs ex' in
          if ds <> [] || ss <> [] then
            Loc.error ex'.eloc
              "user-function calls are not supported inside reduction %s"
              name
          else ex''
        in
        (Option.map (check "predicates") p, check "operands" ex)
      in
      let rbranches = List.map fix r.rbranches in
      let rothers =
        Option.map
          (fun ex ->
            let ds, ss, ex' = inline_expr funcs ex in
            if ds <> [] || ss <> [] then
              Loc.error ex.eloc
                "user-function calls are not supported inside reduction others";
            ex')
          r.rothers
      in
      ([], [], { e with e = Ereduce { r with rbranches; rothers } })
  | Ecall (name, args) -> (
      let ds0, ss0, args = inline_list funcs args in
      match List.assoc_opt name funcs with
      | None -> (ds0, ss0, { e with e = Ecall (name, args) })
      | Some f -> (
          let ds1, ss1, result = inline_call funcs loc f args in
          match result with
          | Some v -> (ds0 @ ds1, ss0 @ ss1, { e with e = Evar v })
          | None ->
              Loc.error loc "void function %s used in an expression" f.fname))

and inline_list funcs exprs =
  List.fold_right
    (fun ex (ds, ss, acc) ->
      let d, s, ex' = inline_expr funcs ex in
      (d @ ds, s @ ss, ex' :: acc))
    exprs ([], [], [])

(* Expand one call: returns prelude declarations, prelude statements, and
   the name of the variable holding the result (None for void). *)
and inline_call funcs loc f args : decl list * stmt list * string option =
  (* bind parameters: array params substitute textually (by reference),
     scalar params become fresh initialised locals *)
  let env = ref [] in
  let decls = ref [] in
  List.iter2
    (fun p a ->
      if p.prank > 0 then env := (p.pname, a) :: !env
      else begin
        let nm = fresh p.pname in
        decls :=
          Dvar (p.pty, [ { dname = nm; ddims = []; dinit = Some a; dloc = loc } ])
          :: !decls;
        env := (p.pname, { e = Evar nm; eloc = loc }) :: !env
      end)
    f.fparams args;
  (* rename the body's own declarations *)
  let body = f.fbody in
  List.iter
    (fun d ->
      match d with
      | Dvar (ty, ds) ->
          List.iter
            (fun dd ->
              let nm = fresh dd.dname in
              env := (dd.dname, { e = Evar nm; eloc = dd.dloc }) :: !env;
              decls :=
                Dvar
                  ( ty,
                    [ { dd with dname = nm; dinit = None } ] )
                :: !decls;
              match dd.dinit with
              | Some init ->
                  ignore init
                  (* initialisers are moved into the statement prelude below *)
              | None -> ())
            ds
      | Dindexset _ ->
          Loc.error loc
            "index-set declarations inside inlined functions are not supported")
    body.bdecls;
  (* initialiser statements for renamed locals *)
  let init_stmts =
    List.concat_map
      (function
        | Dvar (_, ds) ->
            List.filter_map
              (fun dd ->
                match dd.dinit with
                | Some init ->
                    let lhs = List.assoc dd.dname !env in
                    Some
                      {
                        s = Sassign (Aset, subst_expr !env lhs, subst_expr !env init);
                        sloc = dd.dloc;
                      }
                | None -> None)
              ds
        | Dindexset _ -> [])
      body.bdecls
  in
  (* no return may hide anywhere but the tail position *)
  let rec has_return st =
    match st.s with
    | Sreturn _ -> true
    | Sif (_, t, e) ->
        has_return t || (match e with Some s -> has_return s | None -> false)
    | Swhile (_, b) -> has_return b
    | Sfor (i, _, s, b) ->
        (match i with Some s' -> has_return s' | None -> false)
        || (match s with Some s' -> has_return s' | None -> false)
        || has_return b
    | Sblock b -> List.exists has_return b.bstmts
    | Spar ps | Sseq ps | Ssolve ps | Soneof ps ->
        List.exists (fun (_, s) -> has_return s) ps.pbranches
        || (match ps.pothers with Some s -> has_return s | None -> false)
    | Sexpr _ | Sassign _ | Sempty | Sbreak | Scontinue -> false
  in
  (* split the body into leading statements and a tail return *)
  let rec split acc = function
    | [] -> (List.rev acc, None)
    | [ { s = Sreturn e; _ } ] -> (List.rev acc, Some e)
    | { s = Sreturn _; sloc } :: _ ->
        Loc.error sloc
          "early return in %s prevents inlining (return must be the last \
           statement)"
          f.fname
    | st :: rest -> split (st :: acc) rest
  in
  let leading, tail = split [] body.bstmts in
  List.iter
    (fun st ->
      if has_return st then
        Loc.error st.sloc
          "early return in %s prevents inlining (return must be the last \
           statement)"
          f.fname)
    leading;
  let leading = List.map (subst_stmt !env) leading in
  let result_decl, result_stmts, result =
    match f.fret, tail with
    | Some ty, Some (Some ret_e) ->
        let nm = fresh (f.fname ^ "_result") in
        ( [ Dvar (ty, [ { dname = nm; ddims = []; dinit = None; dloc = loc } ]) ],
          [
            {
              s = Sassign (Aset, { e = Evar nm; eloc = loc }, subst_expr !env ret_e);
              sloc = loc;
            };
          ],
          Some nm )
    | Some _, (None | Some None) ->
        Loc.error loc "function %s must end with 'return <expr>'" f.fname
    | None, (None | Some None) -> ([], [], None)
    | None, Some (Some _) ->
        Loc.error loc "void function %s returns a value" f.fname
  in
  ( List.rev !decls @ result_decl,
    init_stmts @ leading @ result_stmts,
    result )

(* Wrap a rewritten statement with its prelude. *)
let with_prelude loc (ds, ss, st) =
  if ds = [] && ss = [] then st
  else { s = Sblock { bdecls = ds; bstmts = ss @ [ st ] }; sloc = loc }

let rec inline_stmt funcs st =
  let loc = st.sloc in
  match st.s with
  | Sempty | Sbreak | Scontinue -> st
  | Sexpr { e = Ecall (name, args); eloc } when List.mem_assoc name funcs ->
      (* a void (or ignored) call in statement position *)
      let ds0, ss0, args = inline_list funcs args in
      let f = List.assoc name funcs in
      let ds1, ss1, _result = inline_call funcs eloc f args in
      {
        s = Sblock { bdecls = ds0 @ ds1; bstmts = ss0 @ ss1 };
        sloc = loc;
      }
  | Sexpr e ->
      let ds, ss, e = inline_expr funcs e in
      with_prelude loc (ds, ss, { st with s = Sexpr e })
  | Sassign (op, l, r) ->
      let ds1, ss1, l = inline_expr funcs l in
      let ds2, ss2, r = inline_expr funcs r in
      with_prelude loc (ds1 @ ds2, ss1 @ ss2, { st with s = Sassign (op, l, r) })
  | Sif (c, t, e) ->
      let ds, ss, c = inline_expr funcs c in
      let t = inline_stmt funcs t in
      let e = Option.map (inline_stmt funcs) e in
      with_prelude loc (ds, ss, { st with s = Sif (c, t, e) })
  | Swhile (c, b) ->
      (* hoisting out of a loop condition would change evaluation; require
         the condition to be call-free *)
      let ds, ss, c = inline_expr funcs c in
      if ds <> [] || ss <> [] then
        Loc.error loc "user-function calls in loop conditions are not supported";
      { st with s = Swhile (c, inline_stmt funcs b) }
  | Sfor (i, c, s, b) ->
      let i = Option.map (inline_stmt funcs) i in
      (match c with
      | Some c' ->
          let ds, ss, _ = inline_expr funcs c' in
          if ds <> [] || ss <> [] then
            Loc.error loc
              "user-function calls in loop conditions are not supported"
      | None -> ());
      let s = Option.map (inline_stmt funcs) s in
      { st with s = Sfor (i, c, s, inline_stmt funcs b) }
  | Sblock b -> { st with s = Sblock (inline_block funcs b) }
  | Sreturn e ->
      let ds, ss, e =
        match e with
        | Some ex ->
            let ds, ss, ex = inline_expr funcs ex in
            (ds, ss, Some ex)
        | None -> ([], [], None)
      in
      with_prelude loc (ds, ss, { st with s = Sreturn e })
  | Spar ps -> { st with s = Spar (inline_par funcs loc ps) }
  | Sseq ps -> { st with s = Sseq (inline_par funcs loc ps) }
  | Soneof ps -> { st with s = Soneof (inline_par funcs loc ps) }
  | Ssolve ps -> { st with s = Ssolve (inline_par funcs loc ps) }

and inline_par funcs loc ps =
  let fix_pred = function
    | None -> None
    | Some p ->
        let ds, ss, p = inline_expr funcs p in
        if ds <> [] || ss <> [] then
          Loc.error loc
            "user-function calls are not supported in st predicates";
        Some p
  in
  {
    ps with
    pbranches =
      List.map (fun (p, st) -> (fix_pred p, inline_stmt funcs st)) ps.pbranches;
    pothers = Option.map (inline_stmt funcs) ps.pothers;
  }

and inline_block funcs b =
  { b with bstmts = List.map (inline_stmt funcs) b.bstmts }

(* ---------------- solve lowering ---------------- *)

(* Collect the assignment statements of a solve branch (possibly nested in
   blocks; sema guarantees the shape). *)
let rec solve_assignments st =
  match st.s with
  | Sassign (Aset, lhs, rhs) -> [ (st.sloc, lhs, rhs) ]
  | Sblock { bdecls = []; bstmts } -> List.concat_map solve_assignments bstmts
  | _ -> Loc.error st.sloc "solve bodies must consist of assignments"

let band loc a b = { e = Ebin (Land, a, b); eloc = loc }
let bne loc a b = { e = Ebin (Ne, a, b); eloc = loc }
let bnot loc a = { e = Eun (Lnot, a); eloc = loc }

(* ---- static dependency-ordered scheduling ([14], section 3.6) ----

   For a plain solve of the restricted form

     solve (I, J, ...)  a[i][j]... = rhs

   whose self-references  a[i+c1][j+c2]...  all have c1+c2+... < 0, the
   assignments can be executed in order of increasing diagonal sum
   i+j+...: every dependency then lies on an earlier diagonal, so one
   sweep computes the unique solution of the proper set (no fixed-point
   detection needed).  The wavefront problem is the paper's example. *)

let rec self_deps array rhs acc =
  match rhs.e with
  | Eindex ({ e = Evar a; _ }, subs) when a = array -> subs :: acc
  | Eindex (_, subs) -> List.fold_left (fun acc s -> self_deps array s acc) acc subs
  | Ebin (_, a, b) -> self_deps array b (self_deps array a acc)
  | Eun (_, a) -> self_deps array a acc
  | Econd (c, a, b) ->
      self_deps array b (self_deps array a (self_deps array c acc))
  | Ecall (_, args) -> List.fold_left (fun acc a -> self_deps array a acc) acc args
  | Ereduce r ->
      let acc =
        List.fold_left
          (fun acc (p, e) ->
            let acc = match p with Some p -> self_deps array p acc | None -> acc in
            self_deps array e acc)
          acc r.rbranches
      in
      (match r.rothers with Some e -> self_deps array e acc | None -> acc)
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> acc

let affine_delta elems sub =
  (* Some c when sub = elem_k + c for the matching element *)
  match sub.e with
  | Evar v -> if List.mem v elems then Some (v, 0) else None
  | Ebin (Add, { e = Evar v; _ }, { e = Eint c; _ }) ->
      if List.mem v elems then Some (v, c) else None
  | Ebin (Sub, { e = Evar v; _ }, { e = Eint c; _ }) ->
      if List.mem v elems then Some (v, -c) else None
  | _ -> None

(* [sets] maps globally-declared index sets to (element, values). *)
let try_schedule_solve sets loc ps =
  match ps.iterate, ps.pbranches, ps.pothers with
  | false, [ (None, stmt) ], None -> (
      match stmt.s with
      | Sassign (Aset, ({ e = Eindex ({ e = Evar arr; _ }, lsubs); _ } as lhs), rhs)
        -> (
          (* the left-hand subscripts must be exactly the solve's elements *)
          let elems =
            List.filter_map
              (fun s ->
                match List.assoc_opt s sets with
                | Some (elem, _) -> Some elem
                | None -> None)
              ps.psets
          in
          let lhs_ok =
            List.length elems = List.length ps.psets
            && List.length lsubs = List.length elems
            && List.for_all2
                 (fun sub elem ->
                   match sub.e with Evar v -> v = elem | _ -> false)
                 lsubs elems
          in
          if not lhs_ok then None
          else
            let deps = self_deps arr rhs [] in
            let strictly_decreasing subs =
              if List.length subs <> List.length elems then None
              else
                let deltas = List.map (affine_delta elems) subs in
                if List.exists (fun d -> d = None) deltas then None
                else begin
                  (* every element must appear once, in order *)
                  let named = List.map Option.get deltas in
                  if List.map fst named <> elems then None
                  else Some (List.fold_left (fun acc (_, c) -> acc + c) 0 named)
                end
            in
            let sums = List.map strictly_decreasing deps in
            if List.exists (function Some s -> s >= 0 | None -> true) sums
            then None
            else begin
              (* schedule over diagonals: seq (D) par (sets) st (sum == d) *)
              let values =
                List.map
                  (fun s ->
                    match List.assoc_opt s sets with
                    | Some (_, values) -> values
                    | None -> [||])
                  ps.psets
              in
              if List.exists (fun v -> Array.length v = 0) values then None
              else if
                (* elements must be 0-based so the diagonal bound is the sum
                   of maxima *)
                List.exists
                  (fun v -> Array.exists (fun x -> x < 0) v)
                  values
              then None
              else begin
                let max_sum =
                  List.fold_left
                    (fun acc v -> acc + Array.fold_left max 0 v)
                    0 values
                in
                let dset = "__diag" and delem = "__d" in
                let sum_expr =
                  match elems with
                  | [] -> assert false
                  | e0 :: rest ->
                      List.fold_left
                        (fun acc e ->
                          { e = Ebin (Add, acc, { e = Evar e; eloc = loc }); eloc = loc })
                        { e = Evar e0; eloc = loc }
                        rest
                in
                let pred =
                  {
                    e = Ebin (Eq, sum_expr, { e = Evar delem; eloc = loc });
                    eloc = loc;
                  }
                in
                let inner_par =
                  {
                    s =
                      Spar
                        {
                          iterate = false;
                          psets = ps.psets;
                          pbranches =
                            [ (Some pred, { s = Sassign (Aset, lhs, rhs); sloc = loc }) ];
                          pothers = None;
                        };
                    sloc = loc;
                  }
                in
                let seq_stmt =
                  {
                    s =
                      Sseq
                        {
                          iterate = false;
                          psets = [ dset ];
                          pbranches = [ (None, inner_par) ];
                          pothers = None;
                        };
                    sloc = loc;
                  }
                in
                let decl =
                  Dindexset
                    [
                      {
                        set_name = dset;
                        elem_name = delem;
                        ispec =
                          Irange
                            ( { e = Eint 0; eloc = loc },
                              { e = Eint max_sum; eloc = loc } );
                        iloc = loc;
                      };
                    ]
                in
                Some
                  { s = Sblock { bdecls = [ decl ]; bstmts = [ seq_stmt ] }; sloc = loc }
              end
            end)
      | _ -> None)
  | _ -> None

let lower_solve loc ps =
  (* make 'others' explicit first, then guard every assignment with a
     change-detection predicate: the fixed point of a proper set *)
  let branch_preds = List.filter_map fst ps.pbranches in
  let branches =
    match ps.pothers with
    | None -> ps.pbranches
    | Some st ->
        let neg =
          match branch_preds with
          | [] -> Loc.error loc "others requires st branches"
          | p :: rest ->
              bnot loc
                (List.fold_left (fun acc q -> { e = Ebin (Lor, acc, q); eloc = loc }) p rest)
        in
        ps.pbranches @ [ (Some neg, st) ]
  in
  let guarded =
    List.concat_map
      (fun (pred, st) ->
        List.map
          (fun (aloc, lhs, rhs) ->
            let change = bne aloc lhs rhs in
            let pred' =
              match pred with None -> change | Some p -> band aloc p change
            in
            (Some pred', { s = Sassign (Aset, lhs, rhs); sloc = aloc }))
          (solve_assignments st))
      branches
  in
  { iterate = true; psets = ps.psets; pbranches = guarded; pothers = None }

let rec lower_solve_stmt ~schedule sets st =
  let recurse = lower_solve_stmt ~schedule sets in
  let d =
    match st.s with
    | Ssolve ps -> (
        let ps = map_par recurse ps in
        match
          if ps.iterate || not schedule then None
          else try_schedule_solve sets st.sloc ps
        with
        | Some scheduled -> scheduled.s
        | None -> Spar (lower_solve st.sloc ps))
    | Spar ps -> Spar (map_par recurse ps)
    | Sseq ps -> Sseq (map_par recurse ps)
    | Soneof ps -> Soneof (map_par recurse ps)
    | Sif (c, t, e) -> Sif (c, recurse t, Option.map recurse e)
    | Swhile (c, b) -> Swhile (c, recurse b)
    | Sfor (i, c, s, b) ->
        Sfor (Option.map recurse i, c, Option.map recurse s, recurse b)
    | Sblock b -> Sblock { b with bstmts = List.map recurse b.bstmts }
    | d -> d
  in
  { st with s = d }

and map_par f ps =
  {
    ps with
    pbranches = List.map (fun (p, st) -> (p, f st)) ps.pbranches;
    pothers = Option.map f ps.pothers;
  }

(* ---------------- program ---------------- *)

let global_sets prog =
  List.concat_map
    (function
      | Tdecl (Dindexset defs) ->
          List.filter_map
            (fun def ->
              try
                let values =
                  match def.ispec with
                  | Irange (lo, hi) ->
                      let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
                      Array.init (hi - lo + 1) (fun k -> lo + k)
                  | Ilist es -> Array.of_list (List.map Sema.const_eval es)
                  | Ialias _ -> raise Exit
                in
                Some (def.set_name, (def.elem_name, values))
              with _ -> None)
            defs
      | _ -> [])
    prog

let resolve_aliases prog sets =
  (* second pass so J:j = I resolves *)
  List.concat_map
    (function
      | Tdecl (Dindexset defs) ->
          List.filter_map
            (fun def ->
              match def.ispec with
              | Ialias other -> (
                  match List.assoc_opt other sets with
                  | Some (_, values) -> Some (def.set_name, (def.elem_name, values))
                  | None -> None)
              | _ -> None)
            defs
      | _ -> [])
    prog
  @ sets

let apply ?(schedule_solve = true) prog =
  let sets = global_sets prog in
  let sets = resolve_aliases prog sets in
  let funcs = ref [] in
  let out =
    List.filter_map
      (fun top ->
        match top with
        | Tdecl _ | Tmap _ -> Some top
        | Tfunc f ->
            let fbody = inline_block !funcs f.fbody in
            let fbody =
              { fbody with
                bstmts =
                  List.map
                    (lower_solve_stmt ~schedule:schedule_solve sets)
                    fbody.bstmts }
            in
            let f = { f with fbody } in
            funcs := !funcs @ [ (f.fname, f) ];
            if f.fname = "main" then Some (Tfunc f) else None)
      prog
  in
  out
