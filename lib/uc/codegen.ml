open Ast
module P = Cm.Paris

type options = {
  news_opt : bool;
  procopt : bool;
  use_mappings : bool;
  cse : bool;
  ir_opt : Cm.Iropt.config;
}

let default_options =
  {
    news_opt = true;
    procopt = true;
    use_mappings = true;
    cse = true;
    ir_opt = Cm.Iropt.default;
  }

type array_meta = {
  afield : int;
  aty : base_ty;
  adims : int list;
  alayout : Mapping.layout;
}

type scalar_meta = { sreg : int; sty : base_ty }

type compiled = {
  prog : P.program;
  carrays : (string * array_meta) list;
  cscalars : (string * scalar_meta) list;
}

(* ---------------- codegen state ---------------- *)

type binding =
  | Bscalar of scalar_meta              (* front-end scalar *)
  | Barray of array_meta
  | Bset of string * int array          (* element name, values *)
  | Belem_axis of int                   (* axis of the current space *)
  | Belem_reg of int                    (* seq element held in a register *)
  | Bparlocal of base_ty * int * int    (* type, field, owning vpset *)

(* the current activity space of a parallel context *)
type space = {
  vp : int;
  dims : int list;
  axes : (string * int array) list;  (* element name + values, one per axis *)
  value_fields : int array;          (* per axis: field holding the element value *)
}

type ctx = {
  b : P.Builder.t;
  opts : options;
  layouts : (string * Mapping.layout) list;
  geoms : (int list, int) Hashtbl.t;
  mutable env : (string * binding) list;
  mutable space : space option;          (* None = front-end context *)
  mutable act_all : bool;                (* current context statically full *)
  mutable cur_with : int;
  mutable break_labels : int list;
  mutable continue_labels : int list;
  mutable exit_label : int;
  mutable known_extents : int list;  (* axis extents of declared arrays *)
  (* common sub-expression elimination: pure parallel expressions already
     evaluated in the current space under an enclosing (wider) mask *)
  mutable cse_table : (Ast.expr * int * int list * P.operand) list;
  mutable mask_path : int list;
  mutable next_mask_id : int;
}

let err loc fmt = Loc.error loc fmt

let kind_of_ty = function Tint -> P.KInt | Tfloat -> P.KFloat

let vpset_for ctx dims =
  match Hashtbl.find_opt ctx.geoms dims with
  | Some vp -> vp
  | None ->
      let vp = P.Builder.vpset ctx.b (Cm.Geometry.create dims) in
      Hashtbl.replace ctx.geoms dims vp;
      vp

let emit ctx i = P.Builder.emit ctx.b i

let ensure_with ctx vp =
  if ctx.cur_with <> vp then begin
    emit ctx (P.Cwith vp);
    ctx.cur_with <- vp
  end

let temp ctx ?(vp = -1) kind =
  let vp = if vp >= 0 then vp else (Option.get ctx.space).vp in
  P.Builder.field ctx.b ~vpset:vp kind

let lookup ctx loc name =
  match List.assoc_opt name ctx.env with
  | Some b -> b
  | None -> err loc "unknown identifier %s" name

let lookup_set ctx loc name =
  match lookup ctx loc name with
  | Bset (elem, values) -> (elem, values)
  | _ -> err loc "%s is not an index set" name

let array_meta ctx loc name =
  match lookup ctx loc name with
  | Barray m -> m
  | _ -> err loc "%s is not an array" name

(* ---------------- types ---------------- *)

let rec ty_of ctx e =
  match e.e with
  | Eint _ | Einf -> Tint
  | Efloat _ -> Tfloat
  | Estr _ -> err e.eloc "string literal outside print"
  | Evar v -> (
      match lookup ctx e.eloc v with
      | Bscalar m -> m.sty
      | Belem_axis _ | Belem_reg _ -> Tint
      | Bparlocal (ty, _, _) -> ty
      | Barray _ -> err e.eloc "array %s used as a value" v
      | Bset _ -> err e.eloc "index set %s used as a value" v)
  | Eindex (base, _) -> (
      match base.e with
      | Evar v -> (array_meta ctx base.eloc v).aty
      | _ -> err base.eloc "only named arrays can be indexed")
  | Ebin ((Add | Sub | Mul | Div), a, b) ->
      if ty_of ctx a = Tfloat || ty_of ctx b = Tfloat then Tfloat else Tint
  | Ebin _ -> Tint
  | Eun (Neg, a) -> ty_of ctx a
  | Eun _ -> Tint
  | Econd (_, a, b) ->
      if ty_of ctx a = Tfloat || ty_of ctx b = Tfloat then Tfloat else Tint
  | Ecall ("tofloat", _) -> Tfloat
  | Ecall (("toint" | "power2" | "rand"), _) -> Tint
  | Ecall (("abs" | "min" | "max"), args) ->
      if List.exists (fun a -> ty_of ctx a = Tfloat) args then Tfloat else Tint
  | Ecall (f, _) -> err e.eloc "call to %s survived inlining" f
  | Ereduce r ->
      (* bind the reduction's elements for typing purposes only *)
      let saved = ctx.env in
      List.iter
        (fun set ->
          match List.assoc_opt set ctx.env with
          | Some (Bset (elem, _)) -> ctx.env <- (elem, Belem_reg (-1)) :: ctx.env
          | _ -> ())
        r.rsets;
      let tys =
        List.map (fun (_, ex) -> ty_of ctx ex) r.rbranches
        @ (match r.rothers with Some ex -> [ ty_of ctx ex ] | None -> [])
      in
      ctx.env <- saved;
      if List.mem Tfloat tys then Tfloat else Tint

(* ---------------- safety analysis ----------------

   An expression is safe when evaluating it for context-disabled elements
   cannot fault, diverge, or disturb observable state (the rand stream).
   Safe sub-expressions of && / || / ?: may be evaluated flat (a single
   select) instead of under a narrowed context. *)

let is_identity_access ctx base subs =
  match ctx.space, base.e with
  | Some sp, Evar name -> (
      match List.assoc_opt name ctx.env with
      | Some (Barray m) ->
          m.alayout = Mapping.Default
          && m.adims = sp.dims
          && List.length subs = List.length sp.dims
          && List.for_all2
               (fun sub axis ->
                 match sub.e with
                 | Evar v -> (
                     match List.assoc_opt v ctx.env with
                     | Some (Belem_axis ax) -> ax = axis
                     | _ -> false)
                 | _ -> false)
               subs
               (List.init (List.length sp.dims) Fun.id)
      | _ -> false)
  | _ -> false

(* single-axis small-offset affine access on the current space with the
   default layout: lowered as (prefilled) NEWS, hence total and safe *)
let is_news_access ctx base subs =
  ctx.opts.news_opt
  &&
  match ctx.space, base.e with
  | Some sp, Evar name -> (
      match List.assoc_opt name ctx.env with
      | Some (Barray m) ->
          m.alayout = Mapping.Default
          && m.adims = sp.dims
          && List.length subs = List.length sp.dims
          && (let deltas =
                List.mapi
                  (fun axis sub ->
                    match sub.e with
                    | Evar v -> (
                        match List.assoc_opt v ctx.env with
                        | Some (Belem_axis ax) when ax = axis -> Some 0
                        | _ -> None)
                    | Ebin (Add, { e = Evar v; _ }, { e = Eint c; _ }) -> (
                        match List.assoc_opt v ctx.env with
                        | Some (Belem_axis ax) when ax = axis -> Some c
                        | _ -> None)
                    | Ebin (Sub, { e = Evar v; _ }, { e = Eint c; _ }) -> (
                        match List.assoc_opt v ctx.env with
                        | Some (Belem_axis ax) when ax = axis -> Some (-c)
                        | _ -> None)
                    | _ -> None)
                  subs
              in
              List.for_all (function Some _ -> true | None -> false) deltas
              &&
              let nz =
                List.filter (function Some d -> d <> 0 | None -> false) deltas
              in
              match nz with
              | [] -> true
              | [ Some d ] -> abs d <= 2
              | _ -> false)
      | _ -> false)
  | _ -> false

let rec safe_expr ctx e =
  match e.e with
  | Eint _ | Efloat _ | Einf -> true
  | Estr _ -> false
  | Evar v -> (
      match List.assoc_opt v ctx.env with
      | Some (Bscalar _ | Belem_axis _ | Belem_reg _ | Bparlocal _) -> true
      | _ -> false)
  | Eindex (base, subs) ->
      (is_identity_access ctx base subs || is_news_access ctx base subs)
      && List.for_all (safe_expr ctx) subs
  | Ebin ((Div | Mod), _, _) -> false
  | Ebin (_, a, b) -> safe_expr ctx a && safe_expr ctx b
  | Eun (_, a) -> safe_expr ctx a
  | Econd (c, a, b) -> safe_expr ctx c && safe_expr ctx a && safe_expr ctx b
  | Ecall (("power2" | "abs" | "min" | "max" | "tofloat" | "toint"), args) ->
      List.for_all (safe_expr ctx) args
  | Ecall _ -> false
  | Ereduce _ -> false

(* structural equality of expressions, ignoring locations *)
let rec expr_equal a b =
  match a.e, b.e with
  | Eint x, Eint y -> x = y
  | Efloat x, Efloat y -> x = y
  | Estr x, Estr y -> x = y
  | Einf, Einf -> true
  | Evar x, Evar y -> x = y
  | Eindex (b1, s1), Eindex (b2, s2) ->
      expr_equal b1 b2
      && List.length s1 = List.length s2
      && List.for_all2 expr_equal s1 s2
  | Ebin (o1, x1, y1), Ebin (o2, x2, y2) ->
      o1 = o2 && expr_equal x1 x2 && expr_equal y1 y2
  | Eun (o1, x1), Eun (o2, x2) -> o1 = o2 && expr_equal x1 x2
  | Econd (c1, x1, y1), Econd (c2, x2, y2) ->
      expr_equal c1 c2 && expr_equal x1 x2 && expr_equal y1 y2
  | Ecall (f1, a1), Ecall (f2, a2) ->
      f1 = f2 && List.length a1 = List.length a2 && List.for_all2 expr_equal a1 a2
  | Ereduce r1, Ereduce r2 ->
      r1.rop = r2.rop && r1.rsets = r2.rsets
      && List.length r1.rbranches = List.length r2.rbranches
      && List.for_all2
           (fun (p1, e1) (p2, e2) ->
             (match p1, p2 with
             | None, None -> true
             | Some p1, Some p2 -> expr_equal p1 p2
             | _ -> false)
             && expr_equal e1 e2)
           r1.rbranches r2.rbranches
      && (match r1.rothers, r2.rothers with
         | None, None -> true
         | Some x, Some y -> expr_equal x y
         | _ -> false)
  | _ -> false

let rec contains_rand e =
  match e.e with
  | Ecall ("rand", _) -> true
  | Ecall (_, args) -> List.exists contains_rand args
  | Eindex (b, subs) -> contains_rand b || List.exists contains_rand subs
  | Ebin (_, a, b) -> contains_rand a || contains_rand b
  | Eun (_, a) -> contains_rand a
  | Econd (c, a, b) -> contains_rand c || contains_rand a || contains_rand b
  | Ereduce r ->
      List.exists
        (fun (p, ex) ->
          (match p with Some p -> contains_rand p | None -> false)
          || contains_rand ex)
        r.rbranches
      || (match r.rothers with Some ex -> contains_rand ex | None -> false)
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> false

let clear_cse ctx = ctx.cse_table <- []

let rec is_prefix p q =
  match p, q with
  | [], _ -> true
  | x :: p', y :: q' -> x = y && is_prefix p' q'
  | _ -> false

let cse_worthwhile e =
  (* only cache expressions whose recomputation emits instructions *)
  match e.e with
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> false
  | _ -> true

(* ---------------- front-end expressions ---------------- *)

let rec eval_fe ctx e : P.operand =
  match e.e with
  | Eint i -> P.Imm (P.SInt i)
  | Efloat f -> P.Imm (P.SFloat f)
  | Einf -> P.Imm (P.SInt P.inf_int)
  | Estr _ -> err e.eloc "string literal outside print"
  | Evar v -> (
      match lookup ctx e.eloc v with
      | Bscalar m -> P.Reg m.sreg
      | Belem_reg r -> P.Reg r
      | Belem_axis _ ->
          err e.eloc "index element %s used outside its parallel construct" v
      | Bparlocal _ -> err e.eloc "par-local %s used on the front end" v
      | Barray _ -> err e.eloc "array %s used as a value" v
      | Bset _ -> err e.eloc "index set %s used as a value" v)
  | Eindex (base, subs) ->
      let name =
        match base.e with
        | Evar v -> v
        | _ -> err base.eloc "only named arrays can be indexed"
      in
      let m = array_meta ctx base.eloc name in
      let addr = fe_address ctx e.eloc m subs in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fread (r, m.afield, addr));
      P.Reg r
  | Ebin (Land, a, b) ->
      (* short-circuit on the front end via branches *)
      let r = P.Builder.reg ctx.b in
      let lfalse = P.Builder.label ctx.b and lend = P.Builder.label ctx.b in
      let va = eval_fe ctx a in
      emit ctx (P.Jz (va, lfalse));
      let vb = eval_fe ctx b in
      emit ctx (P.Fbin (P.Ne, r, vb, P.Imm (P.SInt 0)));
      emit ctx (P.Jmp lend);
      P.Builder.place ctx.b lfalse;
      emit ctx (P.Fmov (r, P.Imm (P.SInt 0)));
      P.Builder.place ctx.b lend;
      P.Reg r
  | Ebin (Lor, a, b) ->
      let r = P.Builder.reg ctx.b in
      let ltrue = P.Builder.label ctx.b and lend = P.Builder.label ctx.b in
      let va = eval_fe ctx a in
      emit ctx (P.Jnz (va, ltrue));
      let vb = eval_fe ctx b in
      emit ctx (P.Fbin (P.Ne, r, vb, P.Imm (P.SInt 0)));
      emit ctx (P.Jmp lend);
      P.Builder.place ctx.b ltrue;
      emit ctx (P.Fmov (r, P.Imm (P.SInt 1)));
      P.Builder.place ctx.b lend;
      P.Reg r
  | Ebin (op, a, b) ->
      let va = eval_fe ctx a in
      let vb = eval_fe ctx b in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fbin (fe_binop op, r, va, vb));
      P.Reg r
  | Eun (op, a) ->
      let va = eval_fe ctx a in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Funop (fe_unop op, r, va));
      P.Reg r
  | Econd (c, a, b) ->
      let r = P.Builder.reg ctx.b in
      let lelse = P.Builder.label ctx.b and lend = P.Builder.label ctx.b in
      let vc = eval_fe ctx c in
      emit ctx (P.Jz (vc, lelse));
      let va = eval_fe ctx a in
      emit ctx (P.Fmov (r, va));
      emit ctx (P.Jmp lend);
      P.Builder.place ctx.b lelse;
      let vb = eval_fe ctx b in
      emit ctx (P.Fmov (r, vb));
      P.Builder.place ctx.b lend;
      P.Reg r
  | Ecall ("rand", []) ->
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Frand (r, P.Imm (P.SInt 0x40000000)));
      P.Reg r
  | Ecall ("power2", [ a ]) ->
      let va = eval_fe ctx a in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fbin (P.Shl, r, P.Imm (P.SInt 1), va));
      P.Reg r
  | Ecall ("abs", [ a ]) ->
      let va = eval_fe ctx a in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Funop (P.Abs, r, va));
      P.Reg r
  | Ecall (("min" | "max") as f, [ a; b ]) ->
      let va = eval_fe ctx a in
      let vb = eval_fe ctx b in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fbin ((if f = "min" then P.Min else P.Max), r, va, vb));
      P.Reg r
  | Ecall ("tofloat", [ a ]) ->
      let va = eval_fe ctx a in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Funop (P.ToFloat, r, va));
      P.Reg r
  | Ecall ("toint", [ a ]) ->
      let va = eval_fe ctx a in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Funop (P.ToInt, r, va));
      P.Reg r
  | Ecall (f, _) -> err e.eloc "call to %s survived inlining" f
  | Ereduce r -> gen_reduce ctx e.eloc r

and fe_binop = function
  | Add -> P.Add | Sub -> P.Sub | Mul -> P.Mul | Div -> P.Div | Mod -> P.Mod
  | Eq -> P.Eq | Ne -> P.Ne | Lt -> P.Lt | Le -> P.Le | Gt -> P.Gt | Ge -> P.Ge
  | Land -> P.Land | Lor -> P.Lor
  | Band -> P.Band | Bor -> P.Bor | Bxor -> P.Bxor | Shl -> P.Shl | Shr -> P.Shr

and fe_unop = function Neg -> P.Neg | Lnot -> P.Lnot | Bnot -> P.Bnot

(* front-end address of an array element (logical subscripts -> physical
   flat index, honouring the layout) *)
and fe_address ctx loc m subs : P.operand =
  let phys = Mapping.physical_dims m.alayout m.adims in
  match m.alayout with
  | Mapping.Default | Mapping.Copied _ ->
      (* Copied: the front end reads/writes copy 0 (writes replicate below) *)
      let base_dims = m.adims in
      linear_fe ctx base_dims (List.map (eval_fe ctx) subs)
  | Mapping.Shifted offs ->
      let slots =
        List.mapi
          (fun k sub ->
            let v = eval_fe ctx sub in
            let n = List.nth m.adims k in
            let off = offs.(k) in
            if off = 0 then v
            else begin
              let r = P.Builder.reg ctx.b in
              emit ctx (P.Fbin (P.Sub, r, v, P.Imm (P.SInt off)));
              emit ctx (P.Fbin (P.Add, r, P.Reg r, P.Imm (P.SInt (2 * n))));
              emit ctx (P.Fbin (P.Mod, r, P.Reg r, P.Imm (P.SInt n)));
              P.Reg r
            end)
          subs
      in
      linear_fe ctx m.adims slots
  | Mapping.Folded f -> (
      match m.adims, subs with
      | d0 :: _, s0 :: srest ->
          let h = d0 / f in
          let v0 = eval_fe ctx s0 in
          let hi = P.Builder.reg ctx.b and lo = P.Builder.reg ctx.b in
          emit ctx (P.Fbin (P.Mod, hi, v0, P.Imm (P.SInt h)));
          emit ctx (P.Fbin (P.Div, lo, v0, P.Imm (P.SInt h)));
          linear_fe ctx phys
            (P.Reg hi :: P.Reg lo :: List.map (eval_fe ctx) srest)
      | _ -> err loc "fold of a scalar")

and linear_fe ctx dims slots : P.operand =
  match dims, slots with
  | [ _ ], [ s ] -> s
  | _ ->
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fmov (r, P.Imm (P.SInt 0)));
      List.iter2
        (fun d s ->
          emit ctx (P.Fbin (P.Mul, r, P.Reg r, P.Imm (P.SInt d)));
          emit ctx (P.Fbin (P.Add, r, P.Reg r, s)))
        dims slots;
      P.Reg r

(* ---------------- parallel expressions ---------------- *)

(* evaluate in the current space, under the current machine context; pure
   expressions already computed under an enclosing mask are reused (the
   paper's common sub-expression detection) *)
and eval_par ctx e : P.operand =
  let sp = Option.get ctx.space in
  if (not ctx.opts.cse) || (not (cse_worthwhile e)) || contains_rand e then
    eval_par_raw ctx e
  else begin
    let hit =
      List.find_opt
        (fun (e', vp, path, _) ->
          vp = sp.vp && is_prefix path ctx.mask_path && expr_equal e' e)
        ctx.cse_table
    in
    match hit with
    | Some (_, _, _, op) -> op
    | None ->
        let op = eval_par_raw ctx e in
        (match op with
        | P.Fld _ ->
            ctx.cse_table <- (e, sp.vp, ctx.mask_path, op) :: ctx.cse_table
        | _ -> ());
        op
  end

and eval_par_raw ctx e : P.operand =
  let sp = Option.get ctx.space in
  match e.e with
  | Eint i -> P.Imm (P.SInt i)
  | Efloat f -> P.Imm (P.SFloat f)
  | Einf -> P.Imm (P.SInt P.inf_int)
  | Estr _ -> err e.eloc "string literal outside print"
  | Evar v -> (
      match lookup ctx e.eloc v with
      | Bscalar m -> P.Reg m.sreg
      | Belem_reg r -> P.Reg r
      | Belem_axis ax -> P.Fld sp.value_fields.(ax)
      | Bparlocal (_, f, vp) ->
          if vp <> sp.vp then
            err e.eloc
              "par-local %s cannot be read from a nested construct's index \
               space" v;
          P.Fld f
      | Barray _ -> err e.eloc "array %s used as a value" v
      | Bset _ -> err e.eloc "index set %s used as a value" v)
  | Eindex (base, subs) -> gen_read ctx e.eloc base subs
  | Ebin (Land, a, b) when not (safe_expr ctx b) ->
      (* short-circuit: evaluate b only where a holds *)
      let va = eval_par ctx a in
      let t = temp ctx P.KInt in
      emit ctx (P.Pmov (t, P.Imm (P.SInt 0)));
      let cond = land_field ctx va in
      under_mask ctx cond (fun () ->
          let vb = eval_par ctx b in
          emit ctx (P.Pbin (P.Ne, t, vb, P.Imm (P.SInt 0))));
      let r = temp ctx P.KInt in
      emit ctx (P.Pbin (P.Land, r, va, P.Fld t));
      P.Fld r
  | Ebin (Lor, a, b) when not (safe_expr ctx b) ->
      let va = eval_par ctx a in
      let t = temp ctx P.KInt in
      emit ctx (P.Pmov (t, P.Imm (P.SInt 0)));
      let nota = temp ctx P.KInt in
      emit ctx (P.Punop (P.Lnot, nota, va));
      under_mask ctx nota (fun () ->
          let vb = eval_par ctx b in
          emit ctx (P.Pbin (P.Ne, t, vb, P.Imm (P.SInt 0))));
      let r = temp ctx P.KInt in
      emit ctx (P.Pbin (P.Lor, r, va, P.Fld t));
      P.Fld r
  | Ebin (op, a, b) ->
      let va = eval_par ctx a in
      let vb = eval_par ctx b in
      let kind =
        match op with
        | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor | Mod | Band | Bor | Bxor
        | Shl | Shr ->
            P.KInt
        | Add | Sub | Mul | Div -> kind_of_ty (ty_of ctx e)
      in
      let t = temp ctx kind in
      emit ctx (P.Pbin (fe_binop op, t, va, vb));
      P.Fld t
  | Eun (op, a) ->
      let va = eval_par ctx a in
      let t = temp ctx (kind_of_ty (ty_of ctx e)) in
      emit ctx (P.Punop (fe_unop op, t, va));
      P.Fld t
  | Econd (c, a, b) ->
      let vc = eval_par ctx c in
      if safe_expr ctx a && safe_expr ctx b then begin
        let va = eval_par ctx a in
        let vb = eval_par ctx b in
        let t = temp ctx (kind_of_ty (ty_of ctx e)) in
        emit ctx (P.Psel (t, vc, va, vb));
        P.Fld t
      end
      else begin
        let t = temp ctx (kind_of_ty (ty_of ctx e)) in
        let cond = land_field ctx vc in
        under_mask ctx cond (fun () ->
            let va = eval_par ctx a in
            emit ctx (P.Pmov (t, va)));
        let notc = temp ctx P.KInt in
        emit ctx (P.Punop (P.Lnot, notc, vc));
        under_mask ctx notc (fun () ->
            let vb = eval_par ctx b in
            emit ctx (P.Pmov (t, vb)));
        P.Fld t
      end
  | Ecall ("rand", []) ->
      let t = temp ctx P.KInt in
      emit ctx (P.Prand (t, P.Imm (P.SInt 0x40000000)));
      P.Fld t
  | Ecall ("power2", [ a ]) ->
      let va = eval_par ctx a in
      let t = temp ctx P.KInt in
      emit ctx (P.Pbin (P.Shl, t, P.Imm (P.SInt 1), va));
      P.Fld t
  | Ecall ("abs", [ a ]) ->
      let va = eval_par ctx a in
      let t = temp ctx (kind_of_ty (ty_of ctx e)) in
      emit ctx (P.Punop (P.Abs, t, va));
      P.Fld t
  | Ecall (("min" | "max") as f, [ a; b ]) ->
      let va = eval_par ctx a in
      let vb = eval_par ctx b in
      let t = temp ctx (kind_of_ty (ty_of ctx e)) in
      emit ctx (P.Pbin ((if f = "min" then P.Min else P.Max), t, va, vb));
      P.Fld t
  | Ecall ("tofloat", [ a ]) ->
      let va = eval_par ctx a in
      let t = temp ctx P.KFloat in
      emit ctx (P.Punop (P.ToFloat, t, va));
      P.Fld t
  | Ecall ("toint", [ a ]) ->
      let va = eval_par ctx a in
      let t = temp ctx P.KInt in
      emit ctx (P.Punop (P.ToInt, t, va));
      P.Fld t
  | Ecall (f, _) -> err e.eloc "call to %s survived inlining" f
  | Ereduce r -> gen_reduce ctx e.eloc r

(* run [f] with the context narrowed by [field <> 0] *)
and under_mask ctx field f =
  emit ctx P.Cpush;
  emit ctx (P.Cand field);
  let saved = ctx.act_all in
  ctx.act_all <- false;
  let id = ctx.next_mask_id in
  ctx.next_mask_id <- id + 1;
  let saved_path = ctx.mask_path in
  ctx.mask_path <- ctx.mask_path @ [ id ];
  f ();
  (* drop cache entries made under the narrower mask *)
  ctx.cse_table <-
    List.filter (fun (_, _, path, _) -> is_prefix path saved_path) ctx.cse_table;
  ctx.mask_path <- saved_path;
  ctx.act_all <- saved;
  emit ctx P.Cpop

(* materialise an operand as an int field suitable for Cand *)
and land_field ctx (op : P.operand) : int =
  match op with
  | P.Fld f when snd (P.Builder.field_info ctx.b f) = P.KInt -> f
  | _ ->
      let t = temp ctx P.KInt in
      emit ctx (P.Pbin (P.Ne, t, op, P.Imm (P.SInt 0)));
      t

(* ---------------- array addressing (parallel) ---------------- *)

(* affine analysis of one subscript: Some (axis, offset) when the
   subscript is  elem (+|-) const  for an element of the current space
   with canonical 0-based contiguous values *)
and affine_sub ctx sub : (int * int) option =
  (* spaces are cover geometries: an element's value is its coordinate *)
  let elem_axis v =
    match List.assoc_opt v ctx.env with
    | Some (Belem_axis ax) -> Some ax
    | _ -> None
  in
  match sub.e with
  | Evar v -> Option.map (fun ax -> (ax, 0)) (elem_axis v)
  | Ebin (Add, { e = Evar v; _ }, { e = Eint c; _ }) ->
      Option.map (fun ax -> (ax, c)) (elem_axis v)
  | Ebin (Sub, { e = Evar v; _ }, { e = Eint c; _ }) ->
      Option.map (fun ax -> (ax, -c)) (elem_axis v)
  | _ -> None

(* Decide how to access array [m] at logical subscripts [subs] from the
   current space. *)
and access_plan ctx loc m subs =
  let sp = Option.get ctx.space in
  let n_subs = List.length subs in
  if n_subs <> List.length m.adims then err loc "wrong number of subscripts";
  let affs = List.map (affine_sub ctx) subs in
  let same_shape = m.adims = sp.dims && m.alayout <> Mapping.Folded 0 in
  ignore same_shape;
  (* identity / news candidates need the array to live on the space's
     shape and every subscript affine on the matching axis *)
  let aligned_candidate =
    (m.alayout = Mapping.Default || (match m.alayout with Mapping.Shifted _ -> true | _ -> false))
    && m.adims = sp.dims
    && List.length affs = List.length sp.dims
    && List.for_all2
         (fun aff axis -> match aff with Some (ax, _) -> ax = axis | None -> false)
         affs
         (List.init (List.length sp.dims) Fun.id)
  in
  if aligned_candidate then begin
    let deltas =
      List.mapi
        (fun k aff ->
          let _, off = Option.get aff in
          off - Mapping.axis_offset m.alayout k)
        affs
    in
    if List.for_all (fun d -> d = 0) deltas then `Aligned
    else begin
      (* NEWS is sound only when every element's source is statically in
         range (out-of-range NEWS destinations keep stale data) *)
      let nonzero = List.filteri (fun k _ -> List.nth deltas k <> 0) deltas in
      let axis_of_nonzero =
        List.filteri (fun k _ -> List.nth deltas k <> 0) (List.init n_subs Fun.id)
      in
      match nonzero, axis_of_nonzero with
      | [ d ], [ axis ] when ctx.opts.news_opt && abs d <= 2 ->
          let _, values = List.nth sp.axes axis in
          let extent = List.nth m.adims axis in
          let all_in_range =
            Array.for_all (fun v -> v + d >= 0 && v + d < extent) values
          in
          (* a cyclic (Shifted) layout wraps, NEWS does not *)
          let plain_layout = m.alayout = Mapping.Default in
          if not plain_layout then `General
          else if all_in_range then `News (axis, d)
          else
            (* out-of-range destinations keep a prefilled default; correct
               programs guard such elements away, exactly as they must
               guard the access itself *)
            `News_prefill (axis, d)
      | _ -> `General
    end
  end
  else `General

(* compute the physical flat address of [m] at [subs] as an int field on
   the current space *)
and gen_phys_address ctx loc m subs : int =
  let slot_ops =
    match m.alayout with
    | Mapping.Default | Mapping.Copied _ ->
        List.map (fun s -> eval_par ctx s) subs
    | Mapping.Shifted offs ->
        List.mapi
          (fun k sub ->
            let v = eval_par ctx sub in
            let n = List.nth m.adims k in
            let off = offs.(k) in
            if off = 0 then v
            else begin
              let t = temp ctx P.KInt in
              emit ctx (P.Pbin (P.Sub, t, v, P.Imm (P.SInt off)));
              emit ctx (P.Pbin (P.Add, t, P.Fld t, P.Imm (P.SInt (2 * n))));
              emit ctx (P.Pbin (P.Mod, t, P.Fld t, P.Imm (P.SInt n)));
              P.Fld t
            end)
          subs
    | Mapping.Folded f -> (
        match m.adims, subs with
        | d0 :: _, s0 :: srest ->
            let h = d0 / f in
            let v0 = eval_par ctx s0 in
            let hi = temp ctx P.KInt and lo = temp ctx P.KInt in
            emit ctx (P.Pbin (P.Mod, hi, v0, P.Imm (P.SInt h)));
            emit ctx (P.Pbin (P.Div, lo, v0, P.Imm (P.SInt h)));
            P.Fld hi :: P.Fld lo :: List.map (fun s -> eval_par ctx s) srest
        | _ -> err loc "fold of a scalar")
  in
  let dims =
    match m.alayout with
    | Mapping.Copied _ -> m.adims  (* copy selection is added by callers *)
    | l -> Mapping.physical_dims l m.adims
  in
  let addr = temp ctx P.KInt in
  emit ctx (P.Pmov (addr, P.Imm (P.SInt 0)));
  List.iter2
    (fun d s ->
      emit ctx (P.Pbin (P.Mul, addr, P.Fld addr, P.Imm (P.SInt d)));
      emit ctx (P.Pbin (P.Add, addr, P.Fld addr, s)))
    dims slot_ops;
  addr

(* read one array element per active VP *)
and gen_read ctx loc base subs : P.operand =
  let name =
    match base.e with
    | Evar v -> v
    | _ -> err base.eloc "only named arrays can be indexed"
  in
  let m = array_meta ctx base.eloc name in
  match access_plan ctx loc m subs with
  | `Aligned -> P.Fld m.afield
  | `News (axis, delta) ->
      let t = temp ctx (kind_of_ty m.aty) in
      emit ctx (P.Pnews (t, m.afield, axis, delta));
      P.Fld t
  | `News_prefill (axis, delta) ->
      let t = temp ctx (kind_of_ty m.aty) in
      emit ctx (P.Pmov (t, P.Imm (P.SInt 0)));
      emit ctx (P.Pnews (t, m.afield, axis, delta));
      P.Fld t
  | `General ->
      let addr = gen_phys_address ctx loc m subs in
      let addr =
        match m.alayout with
        | Mapping.Copied copies ->
            (* spread reads across the copies in blocks of the leading
               coordinate: block spreading stays uncorrelated with the
               low-order bits that broadcast patterns usually key on *)
            let sp = Option.get ctx.space in
            let ext0 = List.hd sp.dims in
            let block = max 1 (ext0 / copies) in
            let sel = temp ctx P.KInt in
            emit ctx (P.Pcoord (sel, 0));
            emit ctx (P.Pbin (P.Div, sel, P.Fld sel, P.Imm (P.SInt block)));
            emit ctx (P.Pbin (P.Mod, sel, P.Fld sel, P.Imm (P.SInt copies)));
            let total = List.fold_left ( * ) 1 m.adims in
            emit ctx (P.Pbin (P.Mul, sel, P.Fld sel, P.Imm (P.SInt total)));
            emit ctx (P.Pbin (P.Add, sel, P.Fld sel, P.Fld addr));
            sel
        | _ -> addr
      in
      let t = temp ctx (kind_of_ty m.aty) in
      emit ctx (P.Pget (t, m.afield, addr));
      P.Fld t

(* ---------------- reductions ---------------- *)

and redop_binop = function
  | Rsum -> P.Add
  | Rland -> P.Land
  | Rmax -> P.Max
  | Rmin -> P.Min
  | Rprod -> P.Mul
  | Rlor -> P.Lor
  | Rxor -> P.Bxor
  | Rarb -> P.Any

(* Enter an expanded space: ambient axes (if any) plus the named sets.
   Emits the context set-up and returns the new space plus the ambient
   one to restore. *)
(* the cover extent of a set axis: the smallest declared array extent that
   contains every value, so that the activity runs on the processors that
   hold the arrays (the paper's default mapping); set membership becomes a
   context mask *)
and cover_extent ctx values =
  let n = Array.length values in
  if n = 0 then 1
  else begin
    let needed = 1 + Array.fold_left max values.(0) values in
    let candidates =
      List.sort compare (List.filter (fun e -> e >= needed) ctx.known_extents)
    in
    match candidates with m :: _ -> m | [] -> needed
  end

and enter_space ctx loc set_names =
  let ambient = ctx.space in
  let sets = List.map (fun s -> lookup_set ctx loc s) set_names in
  List.iter
    (fun (_, values) ->
      if Array.exists (fun v -> v < 0) values then
        err loc "index sets with negative elements are not supported by the \
                 backend")
    sets;
  let amb_dims, amb_axes =
    match ambient with None -> ([], []) | Some sp -> (sp.dims, sp.axes)
  in
  let covers = List.map (fun (_, v) -> cover_extent ctx v) sets in
  let dims = amb_dims @ covers in
  let axes = amb_axes @ sets in
  let vp = vpset_for ctx dims in
  (* read the ambient activity before switching spaces *)
  let amb_act =
    match ambient with
    | Some sp when not ctx.act_all ->
        ensure_with ctx sp.vp;
        let f = P.Builder.field ctx.b ~vpset:sp.vp P.KInt in
        emit ctx (P.Cread f);
        Some (sp, f)
    | _ -> None
  in
  ensure_with ctx vp;
  emit ctx P.Creset;
  (* in a cover geometry the element value is the coordinate; materialise
     it under the full context so it stays valid under any later mask *)
  let value_fields =
    Array.of_list
      (List.mapi
         (fun ax _ ->
           let f = P.Builder.field ctx.b ~vpset:vp P.KInt in
           emit ctx (P.Pcoord (f, ax));
           f)
         axes)
  in
  (* membership masks for set axes that do not fill their cover *)
  let geom = P.Builder.geom_of ctx.b vp in
  let masked = ref false in
  List.iteri
    (fun k ((_, values), cover) ->
      let ax = List.length amb_dims + k in
      let full =
        Array.length values = cover
        && Array.for_all (fun i -> values.(i) = i) (Array.init cover Fun.id)
      in
      if not full then begin
        masked := true;
        let member = Array.make cover 0 in
        Array.iter (fun v -> member.(v) <- 1) values;
        let total = Cm.Geometry.size geom in
        let table =
          Array.init total (fun p -> member.((Cm.Geometry.coords geom p).(ax)))
        in
        let f = P.Builder.field ctx.b ~vpset:vp P.KInt in
        emit ctx (P.Ptable (f, table));
        emit ctx (P.Cand f)
      end)
    (List.combine sets covers);
  (* expand the ambient activity into the product space *)
  (match amb_act with
  | None -> ()
  | Some (amb_sp, actf) ->
      let inner = List.fold_left (fun acc (_, v) -> acc * Array.length v) 1 sets in
      ignore inner;
      (* prefix-linear index of each VP = linear combination of the
         leading (ambient) coordinates *)
      let addr = P.Builder.field ctx.b ~vpset:vp P.KInt in
      emit ctx (P.Pmov (addr, P.Imm (P.SInt 0)));
      List.iteri
        (fun ax d ->
          emit ctx (P.Pbin (P.Mul, addr, P.Fld addr, P.Imm (P.SInt d)));
          let c = P.Builder.field ctx.b ~vpset:vp P.KInt in
          emit ctx (P.Pcoord (c, ax));
          emit ctx (P.Pbin (P.Add, addr, P.Fld addr, P.Fld c)))
        amb_sp.dims;
      let acte = P.Builder.field ctx.b ~vpset:vp P.KInt in
      emit ctx (P.Pget (acte, actf, addr));
      emit ctx (P.Cand acte));
  (* bind the new elements, shadowing outer ones *)
  let saved_env = ctx.env in
  List.iteri
    (fun k (elem, _) ->
      ctx.env <- (elem, Belem_axis (List.length amb_axes + k)) :: ctx.env)
    sets;
  clear_cse ctx;
  let space = { vp; dims; axes; value_fields } in
  let saved = (ambient, ctx.act_all, saved_env, ctx.mask_path) in
  ctx.space <- Some space;
  (* after entry the context is the expanded ambient activity, narrowed by
     any membership masks *)
  ctx.act_all <-
    (match ambient with None -> true | Some _ -> ctx.act_all) && not !masked;
  ctx.mask_path <- [];
  (saved, space)

and leave_space ctx (ambient, act_all, saved_env, saved_mask_path) =
  clear_cse ctx;
  ctx.space <- ambient;
  ctx.act_all <- act_all;
  ctx.env <- saved_env;
  (* restore the enclosing mask path: anything cached from here on is only
     valid under the mask that was active when the space was entered *)
  ctx.mask_path <- saved_mask_path;
  match ambient with
  | Some sp -> ensure_with ctx sp.vp
  | None -> ()

and gen_reduce ctx loc r : P.operand =
  (* the processor optimization turns histogram-style reductions into a
     combining send; recognised at the assignment level in gen_assign *)
  let ambient = ctx.space in
  let saved, space = enter_space ctx loc r.rsets in
  let result_kind =
    let tys =
      List.map (fun (_, ex) -> ty_of ctx ex) r.rbranches
      @ (match r.rothers with Some ex -> [ ty_of ctx ex ] | None -> [])
    in
    if List.mem Tfloat tys then P.KFloat else P.KInt
  in
  let rop = redop_binop r.rop in
  let amb_result ambient =
    match ambient with
    | None -> `Reg (P.Builder.reg ctx.b)
    | Some sp -> `Fld (P.Builder.field ctx.b ~vpset:sp.vp result_kind)
  in
  (* evaluate each branch: predicate field + reduced value *)
  let branch_results =
    List.map
      (fun (pred, expr) ->
        let predf =
          match pred with
          | None -> None
          | Some p ->
              let v = eval_par ctx p in
              Some (land_field ctx v)
        in
        let body () =
          let v = eval_par ctx expr in
          let tmpf = temp ctx result_kind in
          emit ctx (P.Pmov (tmpf, v));
          let res = amb_result ambient in
          (match res with
          | `Reg reg -> emit ctx (P.Preduce (rop, reg, tmpf))
          | `Fld f -> emit ctx (P.Preduce_axis (rop, f, tmpf)));
          res
        in
        let res =
          match predf with
          | Some f ->
              let out = ref None in
              under_mask ctx f (fun () -> out := Some (body ()));
              Option.get !out
          | None -> body ()
        in
        (predf, res))
      r.rbranches
  in
  (* the others branch covers elements enabled by no predicate *)
  let branch_results =
    match r.rothers with
    | None -> branch_results
    | Some expr ->
        let preds = List.filter_map fst branch_results in
        let nor = temp ctx P.KInt in
        emit ctx (P.Pmov (nor, P.Imm (P.SInt 0)));
        List.iter (fun f -> emit ctx (P.Pbin (P.Lor, nor, P.Fld nor, P.Fld f))) preds;
        emit ctx (P.Punop (P.Lnot, nor, P.Fld nor));
        let out = ref None in
        under_mask ctx nor (fun () ->
            let v = eval_par ctx expr in
            let tmpf = temp ctx result_kind in
            emit ctx (P.Pmov (tmpf, v));
            let res = amb_result ambient in
            (match res with
            | `Reg reg -> emit ctx (P.Preduce (rop, reg, tmpf))
            | `Fld f -> emit ctx (P.Preduce_axis (rop, f, tmpf)));
            out := Some res);
        branch_results @ [ (Some nor, Option.get !out) ]
  in
  (* per-branch "was anything enabled" flags, needed to combine $, *)
  let has_any =
    if r.rop = Rarb && List.length branch_results > 1 then
      List.map
        (fun (predf, _) ->
          let onef = temp ctx P.KInt in
          (match predf with
          | Some f -> emit ctx (P.Pmov (onef, P.Fld f))
          | None -> emit ctx (P.Pmov (onef, P.Imm (P.SInt 1))));
          let res = amb_result ambient in
          (match res with
          | `Reg reg -> emit ctx (P.Preduce (P.Lor, reg, onef))
          | `Fld f -> emit ctx (P.Preduce_axis (P.Lor, f, onef)));
          res)
        branch_results
    else []
  in
  ignore space;
  leave_space ctx saved;
  (* combine the per-branch results on the ambient space / front end *)
  let combine_two a b =
    match ambient, a, b with
    | None, `Reg ra, `Reg rb ->
        let r' = P.Builder.reg ctx.b in
        emit ctx (P.Fbin (rop, r', P.Reg ra, P.Reg rb));
        `Reg r'
    | Some sp, `Fld fa, `Fld fb ->
        let f = P.Builder.field ctx.b ~vpset:sp.vp result_kind in
        emit ctx (P.Pbin (rop, f, P.Fld fa, P.Fld fb));
        `Fld f
    | _ -> assert false
  in
  let final =
    match branch_results with
    | [] -> assert false
    | [ (_, res) ] -> res
    | (_, first) :: rest ->
        if r.rop = Rarb then begin
          (* select the first branch that had any enabled element *)
          let rec chain results flags =
            match results, flags with
            | [ (_, res) ], [ _ ] -> res
            | (_, res) :: rest, flag :: frest -> (
                let tail = chain rest frest in
                match ambient, res, tail, flag with
                | Some sp, `Fld fr, `Fld ft, `Fld ff ->
                    let out = P.Builder.field ctx.b ~vpset:sp.vp result_kind in
                    emit ctx (P.Psel (out, P.Fld ff, P.Fld fr, P.Fld ft));
                    `Fld out
                | None, `Reg rr, `Reg rt, `Reg rf ->
                    let out = P.Builder.reg ctx.b in
                    let lelse = P.Builder.label ctx.b in
                    let lend = P.Builder.label ctx.b in
                    emit ctx (P.Jz (P.Reg rf, lelse));
                    emit ctx (P.Fmov (out, P.Reg rr));
                    emit ctx (P.Jmp lend);
                    P.Builder.place ctx.b lelse;
                    emit ctx (P.Fmov (out, P.Reg rt));
                    P.Builder.place ctx.b lend;
                    `Reg out
                | _ -> assert false)
            | _ -> assert false
          in
          chain branch_results has_any
        end
        else List.fold_left (fun acc (_, res) -> combine_two acc res) first rest
  in
  match final with `Reg r' -> P.Reg r' | `Fld f -> P.Fld f

(* ---------------- assignment targets ---------------- *)

type target =
  | Tparlocal of base_ty * int                 (* field on the current space *)
  | Taligned of array_meta                     (* own slot, local ops *)
  | Tremote of array_meta * int                (* physical address field *)

let paris_assign_op = function
  | Aadd -> P.Add | Asub -> P.Sub | Amul -> P.Mul | Adiv -> P.Div
  | Amod -> P.Mod | Amin -> P.Min | Amax -> P.Max
  | Aset -> assert false

(* Evaluate the target of a parallel assignment; subscripts are evaluated
   exactly once. *)
let gen_target ctx loc lhs : target =
  match lhs.e with
  | Evar v -> (
      match lookup ctx loc v with
      | Bparlocal (ty, f, vp) ->
          let sp = Option.get ctx.space in
          if vp <> sp.vp then
            err loc
              "par-local %s cannot be assigned from a nested construct's \
               index space" v;
          Tparlocal (ty, f)
      | _ -> err loc "%s is not assignable in a parallel construct" v)
  | Eindex (base, subs) -> (
      let name =
        match base.e with
        | Evar v -> v
        | _ -> err base.eloc "only named arrays can be indexed"
      in
      let m = array_meta ctx base.eloc name in
      match access_plan ctx loc m subs with
      | `Aligned -> Taligned m
      | `News _ | `News_prefill _ | `General ->
          Tremote (m, gen_phys_address ctx loc m subs))
  | _ -> err loc "invalid assignment target"

let target_kind = function
  | Tparlocal (ty, _) -> kind_of_ty ty
  | Taligned m | Tremote (m, _) -> kind_of_ty m.aty

(* current value of the target, for op= and swap *)
let target_read ctx target : P.operand =
  match target with
  | Tparlocal (_, f) -> P.Fld f
  | Taligned m -> P.Fld m.afield
  | Tremote (m, addr) ->
      let t = temp ctx (kind_of_ty m.aty) in
      emit ctx (P.Pget (t, m.afield, addr));
      P.Fld t

let target_write ctx loc target (value : P.operand) =
  clear_cse ctx;
  match target with
  | Tparlocal (_, f) -> emit ctx (P.Pmov (f, value))
  | Taligned m -> emit ctx (P.Pmov (m.afield, value))
  | Tremote (m, addr) ->
      (* the router needs a source field of the destination kind *)
      let src = temp ctx (kind_of_ty m.aty) in
      emit ctx (P.Pmov (src, value));
      (match m.alayout with
      | Mapping.Copied copies ->
          (* writes update every copy *)
          let total = List.fold_left ( * ) 1 m.adims in
          for c = 0 to copies - 1 do
            if c = 0 then emit ctx (P.Psend (m.afield, src, addr, P.Ccheck))
            else begin
              let a = temp ctx P.KInt in
              emit ctx (P.Pbin (P.Add, a, P.Fld addr, P.Imm (P.SInt (c * total))));
              emit ctx (P.Psend (m.afield, src, a, P.Ccheck))
            end
          done
      | _ -> emit ctx (P.Psend (m.afield, src, addr, P.Ccheck)));
      ignore loc

(* ---------------- the processor optimization (paper section 4) ----------

   par (J) count[j] = $+(I st (samples[i] == j) 1)
   -> a combining send over the I space (N processors instead of |J| * N). *)

let rec free_elems acc e =
  match e.e with
  | Evar v -> v :: acc
  | Eindex (b, subs) -> List.fold_left free_elems (free_elems acc b) subs
  | Ebin (_, a, b) -> free_elems (free_elems acc a) b
  | Eun (_, a) -> free_elems acc a
  | Econd (c, a, b) -> free_elems (free_elems (free_elems acc c) a) b
  | Ecall (_, args) -> List.fold_left free_elems acc args
  | Ereduce r ->
      let acc =
        List.fold_left
          (fun acc (p, ex) ->
            let acc = match p with Some p -> free_elems acc p | None -> acc in
            free_elems acc ex)
          acc r.rbranches
      in
      (match r.rothers with Some ex -> free_elems acc ex | None -> acc)
  | Eint _ | Efloat _ | Estr _ | Einf -> acc

let try_histogram ctx loc lhs rhs : bool =
  if not ctx.opts.procopt then false
  else
    match ctx.space, lhs.e, rhs.e with
    | ( Some sp,
        Eindex (base, [ { e = Evar jvar; _ } ]),
        Ereduce
          {
            rop = Rsum;
            rsets = [ iset ];
            rbranches = [ (Some pred, contrib) ];
            rothers = None;
          } )
      when ctx.act_all && List.length sp.dims = 1 -> (
        (* the ambient space must be a canonical 1-D set bound to jvar *)
        let jelem_ok =
          match List.assoc_opt jvar ctx.env with
          | Some (Belem_axis 0) ->
              let _, values = List.nth sp.axes 0 in
              Array.for_all
                (fun k -> values.(k) = k)
                (Array.init (Array.length values) Fun.id)
          | _ -> false
        in
        let cname =
          match base.e with Evar v -> Some v | _ -> None
        in
        match jelem_ok, cname, pred.e with
        | true, Some cname, Ebin (Eq, a, b) -> (
            let m = array_meta ctx base.eloc cname in
            let key, jside =
              match a.e, b.e with
              | _, Evar v when v = jvar -> (Some a, true)
              | Evar v, _ when v = jvar -> (Some b, true)
              | _ -> (None, false)
            in
            ignore jside;
            match key, m.alayout, m.adims with
            | Some key, Mapping.Default, [ extent ] ->
                let _, ivalues = lookup_set ctx loc iset in
                let ielem, _ = lookup_set ctx loc iset in
                (* the key and contribution may only mention the inner
                   element *)
                let mentions_j e = List.mem jvar (free_elems [] e) in
                ignore ielem;
                if mentions_j key || mentions_j contrib then false
                else begin
                  (* zero the histogram, then combine-send over I *)
                  emit ctx (P.Comment "processor optimization: histogram");
                  emit ctx (P.Pmov (m.afield, P.Imm (P.SInt 0)));
                  (* the histogram runs on the I space alone (that is the
                     point of the optimization); the ambient space is
                     statically fully active, so dropping it is sound *)
                  let ambient_space = ctx.space in
                  ctx.space <- None;
                  let saved, _space = enter_space ctx loc [ iset ] in
                  ignore ivalues;
                  let keyop = eval_par ctx key in
                  let addr = temp ctx P.KInt in
                  emit ctx (P.Pmov (addr, keyop));
                  (* drop keys outside the histogram's range *)
                  let inrange = temp ctx P.KInt in
                  emit ctx (P.Pbin (P.Ge, inrange, P.Fld addr, P.Imm (P.SInt 0)));
                  let hi = temp ctx P.KInt in
                  emit ctx (P.Pbin (P.Lt, hi, P.Fld addr, P.Imm (P.SInt extent)));
                  emit ctx (P.Pbin (P.Land, inrange, P.Fld inrange, P.Fld hi));
                  under_mask ctx inrange (fun () ->
                      let c = eval_par ctx contrib in
                      let src = temp ctx P.KInt in
                      emit ctx (P.Pmov (src, c));
                      emit ctx (P.Psend (m.afield, src, addr, P.Cadd)));
                  clear_cse ctx;
                  leave_space ctx saved;
                  ctx.space <- ambient_space;
                  (match ambient_space with
                  | Some sp -> ensure_with ctx sp.vp
                  | None -> ());
                  true
                end
            | _ -> false)
        | _ -> false)
    | _ -> false

(* ---------------- parallel statements ---------------- *)

let rec gen_stmt_par ctx st =
  match st.s with
  | Sempty -> ()
  | Sassign (op, lhs, rhs) -> gen_assign_par ctx st.sloc op lhs rhs
  | Sexpr { e = Ecall ("swap", [ la; lb ]); eloc } ->
      let ta = gen_target ctx eloc la in
      let tb = gen_target ctx eloc lb in
      (* read both before writing either (synchronous exchange) *)
      let va = temp ctx (target_kind ta) in
      emit ctx (P.Pmov (va, target_read ctx ta));
      let vb = temp ctx (target_kind tb) in
      emit ctx (P.Pmov (vb, target_read ctx tb));
      target_write ctx eloc ta (P.Fld vb);
      target_write ctx eloc tb (P.Fld va)
  | Sexpr e -> ignore (eval_par ctx e)
  | Sblock b -> gen_block_par ctx b
  | Sif (c, then_, else_) ->
      let vc = eval_par ctx c in
      let cf = land_field ctx vc in
      under_mask ctx cf (fun () -> gen_stmt_par ctx then_);
      (match else_ with
      | Some s ->
          let notc = temp ctx P.KInt in
          emit ctx (P.Punop (P.Lnot, notc, P.Fld cf));
          under_mask ctx notc (fun () -> gen_stmt_par ctx s)
      | None -> ())
  | Swhile (c, body) ->
      emit ctx P.Cpush;
      let saved_all = ctx.act_all in
      ctx.act_all <- false;
      let top = P.Builder.label ctx.b in
      let out = P.Builder.label ctx.b in
      clear_cse ctx;
      P.Builder.place ctx.b top;
      let vc = eval_par ctx c in
      let cf = land_field ctx vc in
      emit ctx (P.Cand cf);
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Pcount r);
      emit ctx (P.Jz (P.Reg r, out));
      gen_stmt_par ctx body;
      emit ctx (P.Jmp top);
      P.Builder.place ctx.b out;
      emit ctx P.Cpop;
      ctx.act_all <- saved_all
  | Spar ps -> gen_construct ctx st.sloc `Par ps
  | Sseq ps -> gen_construct ctx st.sloc `Seq ps
  | Soneof ps -> gen_construct ctx st.sloc `Oneof ps
  | Ssolve _ -> err st.sloc "solve survived transformation"
  | Sfor _ -> err st.sloc "for loops are not supported inside parallel constructs"
  | Sreturn _ -> err st.sloc "return inside a parallel construct"
  | Sbreak | Scontinue -> err st.sloc "break/continue inside a parallel construct"

and gen_assign_par ctx loc op lhs rhs =
  if op = Aset && try_histogram ctx loc lhs rhs then ()
  else begin
    let target = gen_target ctx loc lhs in
    match op with
    | Aset ->
        let v = eval_par ctx rhs in
        target_write ctx loc target v
    | _ ->
        let old = target_read ctx target in
        (* keep the old value: target_read of an aligned target aliases the
           array, which the write would clobber *)
        let oldt = temp ctx (target_kind target) in
        emit ctx (P.Pmov (oldt, old));
        let v = eval_par ctx rhs in
        let combined = temp ctx (target_kind target) in
        emit ctx (P.Pbin (paris_assign_op op, combined, P.Fld oldt, v));
        target_write ctx loc target (P.Fld combined)
  end

and gen_block_par ctx b =
  let saved_env = ctx.env in
  List.iter
    (fun d ->
      match d with
      | Dvar (ty, ds) ->
          List.iter
            (fun dd ->
              if dd.ddims <> [] then
                err dd.dloc "arrays may not be declared inside parallel \
                             constructs";
              let sp = Option.get ctx.space in
              let f = P.Builder.field ctx.b ~vpset:sp.vp (kind_of_ty ty) in
              (* fresh per entry: reset under the current mask *)
              clear_cse ctx;
              emit ctx (P.Pmov (f, P.Imm (P.SInt 0)));
              ctx.env <- (dd.dname, Bparlocal (ty, f, sp.vp)) :: ctx.env)
            ds
      | Dindexset defs ->
          List.iter
            (fun def ->
              let values = resolve_set_values ctx def in
              ctx.env <- (def.set_name, Bset (def.elem_name, values)) :: ctx.env)
            defs)
    b.bdecls;
  (* initialisers execute synchronously, like assignments *)
  List.iter
    (fun d ->
      match d with
      | Dvar (_, ds) ->
          List.iter
            (fun dd ->
              match dd.dinit with
              | Some init ->
                  gen_assign_par ctx dd.dloc Aset
                    { e = Evar dd.dname; eloc = dd.dloc }
                    init
              | None -> ())
            ds
      | Dindexset _ -> ())
    b.bdecls;
  List.iter (gen_stmt_par ctx) b.bstmts;
  ctx.env <- saved_env

and resolve_set_values ctx def =
  match def.ispec with
  | Irange (lo, hi) ->
      let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
      Array.init (hi - lo + 1) (fun k -> lo + k)
  | Ilist es -> Array.of_list (List.map Sema.const_eval es)
  | Ialias other ->
      let _, values = lookup_set ctx def.iloc other in
      values

(* ---------------- par / oneof / seq constructs ---------------- *)

and gen_construct ctx loc kind ps =
  match kind with
  | `Seq -> gen_seq ctx loc ps
  | `Par -> gen_par ctx loc ps
  | `Oneof -> gen_oneof ctx loc ps

and gen_par ctx loc ps =
  let saved, _space = enter_space ctx loc ps.psets in
  let needs_others = ps.pothers <> None in
  let orf =
    if needs_others then begin
      let f = temp ctx P.KInt in
      emit ctx (P.Pmov (f, P.Imm (P.SInt 0)));
      Some f
    end
    else None
  in
  let round any_reg =
    List.iter
      (fun (pred, body) ->
        match pred with
        | Some p ->
            let pf = land_field ctx (eval_par ctx p) in
            (match orf with
            | Some f -> emit ctx (P.Pbin (P.Lor, f, P.Fld f, P.Fld pf))
            | None -> ());
            (match any_reg with
            | Some any ->
                let r = P.Builder.reg ctx.b in
                emit ctx (P.Preduce (P.Lor, r, pf));
                emit ctx (P.Fbin (P.Lor, any, P.Reg any, P.Reg r))
            | None -> ());
            under_mask ctx pf (fun () -> gen_stmt_par ctx body)
        | None ->
            (match orf with
            | Some f -> emit ctx (P.Pmov (f, P.Imm (P.SInt 1)))
            | None -> ());
            (match any_reg with
            | Some any ->
                let r = P.Builder.reg ctx.b in
                emit ctx (P.Pcount r);
                let nz = P.Builder.reg ctx.b in
                emit ctx (P.Fbin (P.Ne, nz, P.Reg r, P.Imm (P.SInt 0)));
                emit ctx (P.Fbin (P.Lor, any, P.Reg any, P.Reg nz))
            | None -> ());
            gen_stmt_par ctx body)
      ps.pbranches;
    match ps.pothers, orf with
    | Some body, Some f ->
        let notf = temp ctx P.KInt in
        emit ctx (P.Punop (P.Lnot, notf, P.Fld f));
        under_mask ctx notf (fun () -> gen_stmt_par ctx body);
        (* reset for the next iteration *)
        emit ctx (P.Pmov (f, P.Imm (P.SInt 0)))
    | _ -> ()
  in
  if ps.iterate then begin
    let top = P.Builder.label ctx.b in
    let any = P.Builder.reg ctx.b in
    clear_cse ctx;
    P.Builder.place ctx.b top;
    emit ctx (P.Fmov (any, P.Imm (P.SInt 0)));
    round (Some any);
    emit ctx (P.Jnz (P.Reg any, top))
  end
  else round None;
  leave_space ctx saved

and gen_oneof ctx loc ps =
  if ps.pothers <> None then
    err loc "others is not supported on oneof statements";
  let saved, _space = enter_space ctx loc ps.psets in
  let branches = Array.of_list ps.pbranches in
  let n = Array.length branches in
  let top = P.Builder.label ctx.b in
  let out = P.Builder.label ctx.b in
  clear_cse ctx;
  P.Builder.place ctx.b top;
  let exec_labels = Array.init n (fun _ -> P.Builder.label ctx.b) in
  let pred_fields = Array.make n (-1) in
  (* evaluate every predicate, then dispatch to the first enabled branch *)
  Array.iteri
    (fun i (pred, _) ->
      let pf =
        match pred with
        | Some p -> land_field ctx (eval_par ctx p)
        | None ->
            let f = temp ctx P.KInt in
            emit ctx (P.Pmov (f, P.Imm (P.SInt 1)));
            f
      in
      pred_fields.(i) <- pf;
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Preduce (P.Lor, r, pf));
      emit ctx (P.Jnz (P.Reg r, exec_labels.(i))))
    branches;
  emit ctx (P.Jmp out);
  Array.iteri
    (fun i (_, body) ->
      P.Builder.place ctx.b exec_labels.(i);
      under_mask ctx pred_fields.(i) (fun () -> gen_stmt_par ctx body);
      if ps.iterate then emit ctx (P.Jmp top) else emit ctx (P.Jmp out))
    branches;
  P.Builder.place ctx.b out;
  leave_space ctx saved

and gen_seq ctx loc ps =
  if ps.pothers <> None then
    err loc "others is not meaningful on seq statements";
  let sets = List.map (fun s -> lookup_set ctx loc s) ps.psets in
  let fe_context = ctx.space = None in
  let any_reg = if ps.iterate then Some (P.Builder.reg ctx.b) else None in
  clear_cse ctx;
  let top = P.Builder.label ctx.b in
  if ps.iterate then begin
    P.Builder.place ctx.b top;
    match any_reg with
    | Some any -> emit ctx (P.Fmov (any, P.Imm (P.SInt 0)))
    | None -> ()
  end;
  (* iterate the Cartesian product in declaration order *)
  let rec nest sets_left k =
    match sets_left with
    | [] -> k ()
    | (elem, values) :: rest ->
        let n = Array.length values in
        let contiguous =
          Array.for_all (fun i -> values.(i) = values.(0) + i) (Array.init n Fun.id)
        in
        let saved_env = ctx.env in
        if contiguous && n > 3 then begin
          let v = P.Builder.reg ctx.b in
          emit ctx (P.Fmov (v, P.Imm (P.SInt values.(0))));
          let ltop = P.Builder.label ctx.b in
          let lout = P.Builder.label ctx.b in
          P.Builder.place ctx.b ltop;
          let t = P.Builder.reg ctx.b in
          emit ctx
            (P.Fbin (P.Gt, t, P.Reg v, P.Imm (P.SInt values.(n - 1))));
          emit ctx (P.Jnz (P.Reg t, lout));
          ctx.env <- (elem, Belem_reg v) :: ctx.env;
          nest rest k;
          ctx.env <- saved_env;
          emit ctx (P.Fbin (P.Add, v, P.Reg v, P.Imm (P.SInt 1)));
          emit ctx (P.Jmp ltop);
          P.Builder.place ctx.b lout
        end
        else
          Array.iter
            (fun value ->
              let v = P.Builder.reg ctx.b in
              emit ctx (P.Fmov (v, P.Imm (P.SInt value)));
              ctx.env <- (elem, Belem_reg v) :: ctx.env;
              nest rest k;
              ctx.env <- saved_env)
            values
  in
  nest sets (fun () ->
      clear_cse ctx;
      List.iter
        (fun (pred, body) ->
          if fe_context then begin
            let skip = P.Builder.label ctx.b in
            (match pred with
            | Some p ->
                let vc = eval_fe ctx p in
                emit ctx (P.Jz (vc, skip))
            | None -> ());
            (match any_reg with
            | Some any -> emit ctx (P.Fmov (any, P.Imm (P.SInt 1)))
            | None -> ());
            gen_stmt_fe ctx body;
            P.Builder.place ctx.b skip
          end
          else begin
            match pred with
            | Some p ->
                let pf = land_field ctx (eval_par ctx p) in
                (match any_reg with
                | Some any ->
                    let r = P.Builder.reg ctx.b in
                    emit ctx (P.Preduce (P.Lor, r, pf));
                    emit ctx (P.Fbin (P.Lor, any, P.Reg any, P.Reg r))
                | None -> ());
                under_mask ctx pf (fun () -> gen_stmt_par ctx body)
            | None ->
                (match any_reg with
                | Some any ->
                    let r = P.Builder.reg ctx.b in
                    emit ctx (P.Pcount r);
                    let nz = P.Builder.reg ctx.b in
                    emit ctx (P.Fbin (P.Ne, nz, P.Reg r, P.Imm (P.SInt 0)));
                    emit ctx (P.Fbin (P.Lor, any, P.Reg any, P.Reg nz))
                | None -> ());
                gen_stmt_par ctx body
          end)
        ps.pbranches);
  match any_reg with
  | Some any -> emit ctx (P.Jnz (P.Reg any, top))
  | None -> ()

(* ---------------- front-end statements ---------------- *)

and gen_stmt_fe ctx st =
  (* attribute machine time to source lines (ucc run --profile) *)
  (match st.s with
  | Sblock _ | Sempty -> ()
  | _ -> emit ctx (P.Region (Printf.sprintf "line %d" st.sloc.Loc.line)));
  match st.s with
  | Sempty -> ()
  | Sassign (op, lhs, rhs) -> gen_assign_fe ctx st.sloc op lhs rhs
  | Sexpr { e = Ecall ("print", args); eloc } ->
      let rec split prefix = function
        | [] -> (prefix, None)
        | [ ({ e = Estr s; _ } : expr) ] -> (prefix ^ s, None)
        | [ last ] -> (prefix, Some (eval_fe ctx last))
        | { e = Estr s; _ } :: rest -> split (prefix ^ s) rest
        | _ -> err eloc "print expects string literals and a final value"
      in
      let prefix, v = split "" args in
      emit ctx (P.Fprint (prefix, v))
  | Sexpr { e = Ecall ("swap", [ la; lb ]); eloc } ->
      let ra = eval_fe ctx la in
      let rb = eval_fe ctx lb in
      let ta = P.Builder.reg ctx.b and tb = P.Builder.reg ctx.b in
      emit ctx (P.Fmov (ta, ra));
      emit ctx (P.Fmov (tb, rb));
      gen_assign_fe_value ctx eloc la (P.Reg tb);
      gen_assign_fe_value ctx eloc lb (P.Reg ta)
  | Sexpr e -> ignore (eval_fe ctx e)
  | Sif (c, then_, else_) ->
      let vc = eval_fe ctx c in
      let lelse = P.Builder.label ctx.b in
      let lend = P.Builder.label ctx.b in
      emit ctx (P.Jz (vc, lelse));
      gen_stmt_fe ctx then_;
      emit ctx (P.Jmp lend);
      P.Builder.place ctx.b lelse;
      (match else_ with Some s -> gen_stmt_fe ctx s | None -> ());
      P.Builder.place ctx.b lend
  | Swhile (c, body) ->
      let top = P.Builder.label ctx.b in
      let out = P.Builder.label ctx.b in
      P.Builder.place ctx.b top;
      let vc = eval_fe ctx c in
      emit ctx (P.Jz (vc, out));
      ctx.break_labels <- out :: ctx.break_labels;
      ctx.continue_labels <- top :: ctx.continue_labels;
      gen_stmt_fe ctx body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit ctx (P.Jmp top);
      P.Builder.place ctx.b out
  | Sfor (init, cond, step, body) ->
      (match init with Some s -> gen_stmt_fe ctx s | None -> ());
      let top = P.Builder.label ctx.b in
      let cont = P.Builder.label ctx.b in
      let out = P.Builder.label ctx.b in
      P.Builder.place ctx.b top;
      (match cond with
      | Some c ->
          let vc = eval_fe ctx c in
          emit ctx (P.Jz (vc, out))
      | None -> ());
      ctx.break_labels <- out :: ctx.break_labels;
      ctx.continue_labels <- cont :: ctx.continue_labels;
      gen_stmt_fe ctx body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      P.Builder.place ctx.b cont;
      (match step with Some s -> gen_stmt_fe ctx s | None -> ());
      emit ctx (P.Jmp top);
      P.Builder.place ctx.b out
  | Sblock b -> gen_block_fe ctx b
  | Sreturn _ -> emit ctx (P.Jmp ctx.exit_label)
  | Sbreak -> (
      match ctx.break_labels with
      | l :: _ -> emit ctx (P.Jmp l)
      | [] -> err st.sloc "break outside a loop")
  | Scontinue -> (
      match ctx.continue_labels with
      | l :: _ -> emit ctx (P.Jmp l)
      | [] -> err st.sloc "continue outside a loop")
  | Spar ps -> gen_construct ctx st.sloc `Par ps
  | Sseq ps -> gen_construct ctx st.sloc `Seq ps
  | Soneof ps -> gen_construct ctx st.sloc `Oneof ps
  | Ssolve _ -> err st.sloc "solve survived transformation"

and gen_assign_fe ctx loc op lhs rhs =
  match op with
  | Aset ->
      let v = eval_fe ctx rhs in
      gen_assign_fe_value ctx loc lhs v
  | _ ->
      let old = eval_fe ctx lhs in
      let oldr = P.Builder.reg ctx.b in
      emit ctx (P.Fmov (oldr, old));
      let v = eval_fe ctx rhs in
      let r = P.Builder.reg ctx.b in
      emit ctx (P.Fbin (paris_assign_op op, r, P.Reg oldr, v));
      gen_assign_fe_value ctx loc lhs (P.Reg r)

and gen_assign_fe_value ctx loc lhs value =
  clear_cse ctx;
  match lhs.e with
  | Evar v -> (
      match lookup ctx loc v with
      | Bscalar m ->
          (* coerce so the register kind stays stable *)
          (match m.sty with
          | Tfloat ->
              let r = P.Builder.reg ctx.b in
              emit ctx (P.Funop (P.ToFloat, r, value));
              emit ctx (P.Fmov (m.sreg, P.Reg r))
          | Tint ->
              let r = P.Builder.reg ctx.b in
              emit ctx (P.Funop (P.ToInt, r, value));
              emit ctx (P.Fmov (m.sreg, P.Reg r)))
      | Belem_reg _ -> err loc "index element %s cannot be assigned" v
      | _ -> err loc "%s is not assignable here" v)
  | Eindex (base, subs) -> (
      let name =
        match base.e with
        | Evar v -> v
        | _ -> err base.eloc "only named arrays can be indexed"
      in
      let m = array_meta ctx base.eloc name in
      let addr = fe_address ctx loc m subs in
      match m.alayout with
      | Mapping.Copied copies ->
          let total = List.fold_left ( * ) 1 m.adims in
          for c = 0 to copies - 1 do
            if c = 0 then emit ctx (P.Fwrite (m.afield, addr, value))
            else begin
              let a = P.Builder.reg ctx.b in
              emit ctx (P.Fbin (P.Add, a, addr, P.Imm (P.SInt (c * total))));
              emit ctx (P.Fwrite (m.afield, P.Reg a, value))
            end
          done
      | _ -> emit ctx (P.Fwrite (m.afield, addr, value)))
  | _ -> err loc "invalid assignment target"

and gen_block_fe ctx b =
  let saved_env = ctx.env in
  List.iter (fun d -> declare_fe ctx d) b.bdecls;
  List.iter (gen_stmt_fe ctx) b.bstmts;
  ctx.env <- saved_env

and declare_fe ctx d =
  match d with
  | Dvar (ty, ds) ->
      List.iter
        (fun dd ->
          if dd.ddims = [] then begin
            let sreg = P.Builder.reg ctx.b in
            (* fresh per entry *)
            (match ty with
            | Tint -> emit ctx (P.Fmov (sreg, P.Imm (P.SInt 0)))
            | Tfloat -> emit ctx (P.Fmov (sreg, P.Imm (P.SFloat 0.0))));
            ctx.env <- (dd.dname, Bscalar { sreg; sty = ty }) :: ctx.env;
            match dd.dinit with
            | Some init ->
                gen_assign_fe ctx dd.dloc Aset
                  { e = Evar dd.dname; eloc = dd.dloc }
                  init
            | None -> ()
          end
          else begin
            let dims = List.map Sema.const_eval dd.ddims in
            ctx.known_extents <- dims @ ctx.known_extents;
            let layout =
              if ctx.opts.use_mappings then
                Option.value ~default:Mapping.Default
                  (List.assoc_opt dd.dname ctx.layouts)
              else Mapping.Default
            in
            let pdims = Mapping.physical_dims layout dims in
            let vp = vpset_for ctx pdims in
            let afield = P.Builder.field ctx.b ~vpset:vp (kind_of_ty ty) in
            (* fresh per entry: zero the storage *)
            ensure_with ctx vp;
            emit ctx P.Creset;
            emit ctx (P.Pmov (afield, P.Imm (P.SInt 0)));
            ctx.env <-
              (dd.dname, Barray { afield; aty = ty; adims = dims; alayout = layout })
              :: ctx.env;
            match dd.dinit with
            | Some _ -> err dd.dloc "array initializers are not supported"
            | None -> ()
          end)
        ds
  | Dindexset defs ->
      List.iter
        (fun def ->
          let values = resolve_set_values ctx def in
          ctx.env <- (def.set_name, Bset (def.elem_name, values)) :: ctx.env)
        defs

(* ---------------- program ---------------- *)

let compile ?layouts ?(options = default_options) ?(obs = Obs.null) prog =
  let b = P.Builder.create "uc" in
  (* the one seam through which layout information enters lowering: an
     explicit table (the tuner's choice) wins, otherwise the program's
     own map sections, gated by the use_mappings ablation flag *)
  let layouts =
    match layouts with
    | Some t -> List.map (fun (n, l) -> (n, Mapping.normalize l)) t
    | None -> if options.use_mappings then Mapping.of_program prog else []
  in
  let ctx =
    {
      b;
      opts = options;
      layouts;
      geoms = Hashtbl.create 16;
      env = [];
      space = None;
      act_all = true;
      cur_with = -1;
      break_labels = [];
      continue_labels = [];
      exit_label = 0;
      known_extents = [];
      cse_table = [];
      mask_path = [];
      next_mask_id = 0;
    }
  in
  ctx.exit_label <- P.Builder.label b;
  let main = ref None in
  List.iter
    (fun top ->
      match top with
      | Tdecl d -> declare_fe ctx d
      | Tmap _ -> ()
      | Tfunc f ->
          if f.fname = "main" then main := Some f
          else err f.floc "function %s survived inlining" f.fname)
    prog;
  let carrays =
    List.filter_map
      (function name, Barray m -> Some (name, m) | _ -> None)
      ctx.env
  in
  let cscalars =
    List.filter_map
      (function name, Bscalar m -> Some (name, m) | _ -> None)
      ctx.env
  in
  (match !main with
  | Some f -> gen_block_fe ctx f.fbody
  | None -> Loc.error Loc.dummy "program has no main function");
  P.Builder.place b ctx.exit_label;
  emit ctx P.Halt;
  let prog = P.Builder.finish b in
  let carrays = List.rev carrays and cscalars = List.rev cscalars in
  (* The observable state after a run is the named storage: declared
     arrays and front-end scalars.  Everything else (temporaries, mask
     saves, address fields) is fair game for dead-code elimination. *)
  let prog =
    if Cm.Iropt.enabled options.ir_opt then
      let live_out_fields = List.map (fun (_, m) -> m.afield) carrays in
      let live_out_regs = List.map (fun (_, m) -> m.sreg) cscalars in
      fst
        (Cm.Iropt.run ~config:options.ir_opt ~live_out_fields ~live_out_regs
           ~obs prog)
    else prog
  in
  { prog; carrays; cscalars }
