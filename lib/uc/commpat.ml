open Ast

(* Static communication-pattern analysis (the front half of `ucc tune`).

   Walks the transformed, constant-folded AST in exactly the order
   Codegen emits instructions, but instead of Paris code it records one
   *event* per communication-relevant operation together with the
   operation's static execution count (trip count).  Each array access
   keeps enough structure (affine subscript analysis, the activity
   space's geometry) to be re-classified later under any candidate
   layout, which is what lets Layoutsel score layouts without lowering
   or running anything.

   The mirror has to be faithful to the places where Codegen decides
   how many router/NEWS operations a statement costs:
   - access_plan (Aligned / News / General), including the rule that
     writes never use NEWS;
   - common sub-expression reuse (a cached read is not re-fetched) with
     its clearing points: writes, space entry/leave, loop tops,
     par-local declarations, mask exits;
   - the reduction space entry's ambient-activity expansion (one Pget
     when the ambient context is not statically full);
   - the histogram processor optimization (one combining send);
   - Copied-layout write replication (one send per copy);
   - op= / swap targets reading through the router before writing.

   Trip counts are exact for [for] loops with constant bounds and [seq]
   over index sets; data-dependent iteration (`*par`, `*oneof`, `*seq`,
   SIMD [while], front-end [while], non-constant [if]/[for]) is
   estimated and the affected events are flagged approximate. *)

(* the communication-pattern lattice: Local < News < Router *)
type pat =
  | Local
  | News of int * int (* axis, delta *)
  | Router

type sub =
  | Saffine of int * int (* axis, offset *)
  | Sopaque of (int array -> int) option
      (* evaluator over space coordinates when the subscript is a pure
         index expression; None when it depends on runtime values *)

type access = {
  aname : string;
  aloc : Loc.t;
  arw : [ `Read | `Write ];
  adims : int list; (* logical dims of the array *)
  asubs : sub list;
  aspace : int list; (* dims of the activity space *)
  avalues : int array list; (* per space axis: the element values *)
  atrips : int;
  aapprox : bool;
}

type event =
  | Access of access
  | Activity of { trips : int; size : int; approx : bool }
      (* space-entry expansion of a masked ambient context: one Pget *)
  | Hist_send of { count : string; trips : int; isize : int; approx : bool }
      (* histogram processor optimization: one combining send *)
  | Fe_access of {
      fename : string;
      ferw : [ `Read | `Write ];
      fetrips : int;
    }
      (* front-end element transfer; writes replicate under Copied *)

type summary = {
  events : event list; (* in emission order *)
  arrays : (string * int list) list; (* every global array and its dims *)
  sets : (string * int array) list; (* every global index set's values *)
  options : Codegen.options;
  base_layouts : Mapping.table; (* the table the walk was performed under *)
  had_dynamic : bool; (* some trip count was estimated *)
}

(* assumed iteration count for data-dependent loops; only affects the
   relative weight of approximate events during scoring, never the
   exact-count contract (those events are flagged) *)
let dynamic_trips = 8

(* ---------------- classification ---------------- *)

let axis_offset = Mapping.axis_offset

(* mirror of Codegen.access_plan, parametrized by the layout *)
let classify ~news_opt (a : access) (layout : Mapping.layout) : pat =
  let layout = Mapping.normalize layout in
  let aligned_candidate =
    (match layout with
    | Mapping.Default | Mapping.Shifted _ -> true
    | _ -> false)
    && a.adims = a.aspace
    && List.length a.asubs = List.length a.aspace
    && List.for_all2
         (fun sub axis ->
           match sub with Saffine (ax, _) -> ax = axis | Sopaque _ -> false)
         a.asubs
         (List.init (List.length a.aspace) Fun.id)
  in
  if not aligned_candidate then Router
  else begin
    let deltas =
      List.mapi
        (fun k sub ->
          match sub with
          | Saffine (_, off) -> off - axis_offset layout k
          | Sopaque _ -> assert false)
        a.asubs
    in
    if List.for_all (fun d -> d = 0) deltas then Local
    else
      let nonzero =
        List.filteri (fun k _ -> List.nth deltas k <> 0) deltas
      in
      let axes =
        List.filteri
          (fun k _ -> List.nth deltas k <> 0)
          (List.init (List.length deltas) Fun.id)
      in
      match nonzero, axes with
      | [ d ], [ axis ] when news_opt && abs d <= 2 ->
          (* a cyclic (Shifted) layout wraps, NEWS does not; writes are
             handled by the caller (they never use NEWS) *)
          if layout <> Mapping.Default then Router else News (axis, d)
      | _ -> Router
  end

(* a write is local exactly when the access is fully aligned; every
   other plan sends through the router (Codegen.gen_target) *)
let classify_write ~news_opt a layout =
  match classify ~news_opt a layout with
  | Local -> Local
  | News _ | Router -> Router

let pat_of ~news_opt a layout =
  match a.arw with
  | `Read -> classify ~news_opt a layout
  | `Write -> classify_write ~news_opt a layout

(* predicted router/NEWS operation counts under [table]; [exact] is
   false when an estimated-trip event contributed a nonzero count *)
type prediction = {
  p_router_ops : int;
  p_news_ops : int;
  p_exact : bool;
}

let predict summary (table : Mapping.table) : prediction =
  let news_opt = summary.options.Codegen.news_opt in
  let router = ref 0 and news = ref 0 and exact = ref true in
  let bump cell n approx =
    if n > 0 then begin
      cell := !cell + n;
      if approx then exact := false
    end
  in
  List.iter
    (fun ev ->
      match ev with
      | Access a -> (
          let layout = Mapping.find table a.aname in
          match pat_of ~news_opt a layout with
          | Local -> ()
          | News _ -> bump news a.atrips a.aapprox
          | Router ->
              let per_op =
                match a.arw, layout with
                | `Write, Mapping.Copied m -> m
                | _ -> 1
              in
              bump router (a.atrips * per_op) a.aapprox)
      | Activity { trips; approx; _ } -> bump router trips approx
      | Hist_send { trips; approx; _ } -> bump router trips approx
      | Fe_access _ -> ())
    summary.events;
  { p_router_ops = !router; p_news_ops = !news; p_exact = !exact }

(* ---------------- fan-in estimation (for scoring) ---------------- *)

(* Destination fan-in of a router access under [layout]: evaluate the
   physical address per space point and take the hottest destination.
   Falls back to 1 when a subscript depends on runtime values or the
   space is too big to enumerate. *)
let estimate_fanin (a : access) (layout : Mapping.layout) : int * int =
  let layout = Mapping.normalize layout in
  let size = List.fold_left ( * ) 1 a.aspace in
  let evaluators =
    List.map
      (function
        | Saffine (ax, off) -> Some (fun (coords : int array) -> coords.(ax) + off)
        | Sopaque f -> f)
      a.asubs
  in
  if size <= 0 || size > 65536 || List.exists Option.is_none evaluators then
    (size, 1)
  else begin
    let g = Cm.Geometry.create a.aspace in
    let counts = Hashtbl.create 64 in
    let valid = ref 0 in
    let total = List.fold_left ( * ) 1 a.adims in
    let copies = match layout with Mapping.Copied m -> m | _ -> 1 in
    let block =
      match a.aspace with e0 :: _ -> max 1 (e0 / copies) | [] -> 1
    in
    for p = 0 to size - 1 do
      let coords = Cm.Geometry.coords g p in
      let subs = List.map (fun f -> (Option.get f) coords) evaluators in
      let in_range =
        List.for_all2 (fun v d -> v >= 0 && v < d) subs a.adims
      in
      if in_range then begin
        incr valid;
        let base = Mapping.physical_index layout a.adims subs in
        let addr =
          match layout with
          | Mapping.Copied _ when a.arw = `Read ->
              (* reads spread across copies in leading-coordinate blocks
                 (Codegen.gen_read) *)
              let sel = coords.(0) / block mod copies in
              (sel * total) + base
          | _ -> base
        in
        Hashtbl.replace counts addr
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts addr))
      end
    done;
    let fanin = Hashtbl.fold (fun _ c acc -> max c acc) counts 1 in
    (!valid, fanin)
  end

(* ---------------- the walker ---------------- *)

type binding =
  | Xscalar
  | Xarray of { xdims : int list; xlayout : Mapping.layout }
  | Xset of string * int array
  | Xelem_axis of int
  | Xelem_reg of int (* representative value, for fan-in estimation *)
  | Xparlocal

type wspace = { wdims : int list; waxes : (string * int array) list }

type st = {
  opts : Codegen.options;
  layouts : Mapping.table;
  mutable env : (string * binding) list;
  mutable space : wspace option;
  mutable act_all : bool;
  mutable known_extents : int list;
  (* CSE mirror: expr, space identity (its dims), mask path at entry *)
  mutable cse : (Ast.expr * int list * int list) list;
  mutable mask_path : int list;
  mutable next_mask : int;
  mutable mult : int;
  mutable approx_depth : int;
  mutable had_dynamic : bool;
  mutable events : event list; (* reversed *)
}

exception Returned

let record st ev = st.events <- ev :: st.events

let lookup st loc name =
  match List.assoc_opt name st.env with
  | Some b -> b
  | None -> Loc.error loc "unknown identifier %s" name

let lookup_set st loc name =
  match lookup st loc name with
  | Xset (elem, values) -> (elem, values)
  | _ -> Loc.error loc "%s is not an index set" name

let array_info st loc name =
  match lookup st loc name with
  | Xarray { xdims; xlayout } -> (xdims, xlayout)
  | _ -> Loc.error loc "%s is not an array" name

let const_of e = try Some (Sema.const_eval e) with _ -> None

(* mirror Codegen.affine_sub *)
let affine_sub st sub =
  let elem_axis v =
    match List.assoc_opt v st.env with
    | Some (Xelem_axis ax) -> Some ax
    | _ -> None
  in
  match sub.e with
  | Evar v -> Option.map (fun ax -> (ax, 0)) (elem_axis v)
  | Ebin (Add, { e = Evar v; _ }, { e = Eint c; _ }) ->
      Option.map (fun ax -> (ax, c)) (elem_axis v)
  | Ebin (Sub, { e = Evar v; _ }, { e = Eint c; _ }) ->
      Option.map (fun ax -> (ax, -c)) (elem_axis v)
  | _ -> None

(* pure-index evaluator for fan-in estimation; mirrors nothing in
   Codegen — it abstracts the subscript as a function of coordinates *)
let rec sub_evaluator st e : (int array -> int) option =
  let lift2 f a b =
    match sub_evaluator st a, sub_evaluator st b with
    | Some fa, Some fb -> Some (fun c -> f (fa c) (fb c))
    | _ -> None
  in
  match e.e with
  | Eint k -> Some (fun _ -> k)
  | Evar v -> (
      match List.assoc_opt v st.env with
      | Some (Xelem_axis ax) -> Some (fun coords -> coords.(ax))
      | Some (Xelem_reg rep) -> Some (fun _ -> rep)
      | _ -> None)
  | Ebin (Add, a, b) -> lift2 ( + ) a b
  | Ebin (Sub, a, b) -> lift2 ( - ) a b
  | Ebin (Mul, a, b) -> lift2 ( * ) a b
  | Ebin (Div, a, b) -> lift2 (fun x y -> if y = 0 then 0 else x / y) a b
  | Ebin (Mod, a, b) -> lift2 (fun x y -> if y = 0 then 0 else x mod y) a b
  | Ecall ("power2", [ a ]) ->
      Option.map (fun fa c -> 1 lsl (fa c land 30)) (sub_evaluator st a)
  | Ecall ("abs", [ a ]) -> Option.map (fun fa c -> abs (fa c)) (sub_evaluator st a)
  | Ecall ("min", [ a; b ]) -> lift2 min a b
  | Ecall ("max", [ a; b ]) -> lift2 max a b
  | _ -> None

let make_sub st sub =
  match affine_sub st sub with
  | Some (ax, off) -> Saffine (ax, off)
  | None -> Sopaque (sub_evaluator st sub)

(* expression predicates, mirrored from Codegen *)
let rec contains_rand e =
  match e.e with
  | Ecall ("rand", _) -> true
  | Ecall (_, args) -> List.exists contains_rand args
  | Eindex (b, subs) -> contains_rand b || List.exists contains_rand subs
  | Ebin (_, a, b) -> contains_rand a || contains_rand b
  | Eun (_, a) -> contains_rand a
  | Econd (c, a, b) -> contains_rand c || contains_rand a || contains_rand b
  | Ereduce r ->
      List.exists
        (fun (p, ex) ->
          (match p with Some p -> contains_rand p | None -> false)
          || contains_rand ex)
        r.rbranches
      || (match r.rothers with Some ex -> contains_rand ex | None -> false)
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> false

(* structural equality of expressions, ignoring locations (as in Codegen) *)
let rec expr_equal a b =
  match a.e, b.e with
  | Eint x, Eint y -> x = y
  | Efloat x, Efloat y -> x = y
  | Estr x, Estr y -> x = y
  | Einf, Einf -> true
  | Evar x, Evar y -> x = y
  | Eindex (b1, s1), Eindex (b2, s2) ->
      expr_equal b1 b2
      && List.length s1 = List.length s2
      && List.for_all2 expr_equal s1 s2
  | Ebin (o1, x1, y1), Ebin (o2, x2, y2) ->
      o1 = o2 && expr_equal x1 x2 && expr_equal y1 y2
  | Eun (o1, x1), Eun (o2, x2) -> o1 = o2 && expr_equal x1 x2
  | Econd (c1, x1, y1), Econd (c2, x2, y2) ->
      expr_equal c1 c2 && expr_equal x1 x2 && expr_equal y1 y2
  | Ecall (f1, a1), Ecall (f2, a2) ->
      f1 = f2 && List.length a1 = List.length a2 && List.for_all2 expr_equal a1 a2
  | Ereduce r1, Ereduce r2 ->
      r1.rop = r2.rop && r1.rsets = r2.rsets
      && List.length r1.rbranches = List.length r2.rbranches
      && List.for_all2
           (fun (p1, e1) (p2, e2) ->
             (match p1, p2 with
             | None, None -> true
             | Some p1, Some p2 -> expr_equal p1 p2
             | _ -> false)
             && expr_equal e1 e2)
           r1.rbranches r2.rbranches
      && (match r1.rothers, r2.rothers with
         | None, None -> true
         | Some x, Some y -> expr_equal x y
         | _ -> false)
  | _ -> false

let cse_worthwhile e =
  match e.e with
  | Eint _ | Efloat _ | Estr _ | Einf | Evar _ -> false
  | _ -> true

let rec is_prefix p q =
  match p, q with
  | [], _ -> true
  | x :: p', y :: q' -> x = y && is_prefix p' q'
  | _ -> false

let clear_cse st = st.cse <- []

(* mirror of Codegen.is_identity_access / is_news_access / safe_expr:
   the safety analysis drives short-circuit emission shapes, and it
   depends on the layout in effect during the walk *)
let is_identity_access st base subs =
  match st.space, base.e with
  | Some sp, Evar name -> (
      match List.assoc_opt name st.env with
      | Some (Xarray x) ->
          x.xlayout = Mapping.Default
          && x.xdims = sp.wdims
          && List.length subs = List.length sp.wdims
          && List.for_all2
               (fun sub axis ->
                 match affine_sub st sub with
                 | Some (ax, 0) -> ax = axis
                 | _ -> false)
               subs
               (List.init (List.length sp.wdims) Fun.id)
      | _ -> false)
  | _ -> false

let is_news_access st base subs =
  st.opts.Codegen.news_opt
  &&
  match st.space, base.e with
  | Some sp, Evar name -> (
      match List.assoc_opt name st.env with
      | Some (Xarray x) ->
          x.xlayout = Mapping.Default
          && x.xdims = sp.wdims
          && List.length subs = List.length sp.wdims
          && (let deltas =
                List.mapi
                  (fun axis sub ->
                    match affine_sub st sub with
                    | Some (ax, d) when ax = axis -> Some d
                    | _ -> None)
                  subs
              in
              List.for_all Option.is_some deltas
              &&
              let nz =
                List.filter (function Some d -> d <> 0 | None -> false) deltas
              in
              match nz with
              | [] -> true
              | [ Some d ] -> abs d <= 2
              | _ -> false)
      | _ -> false)
  | _ -> false

let rec safe_expr st e =
  match e.e with
  | Eint _ | Efloat _ | Einf -> true
  | Estr _ -> false
  | Evar v -> (
      match List.assoc_opt v st.env with
      | Some (Xscalar | Xelem_axis _ | Xelem_reg _ | Xparlocal) -> true
      | _ -> false)
  | Eindex (base, subs) ->
      (is_identity_access st base subs || is_news_access st base subs)
      && List.for_all (safe_expr st) subs
  | Ebin ((Div | Mod), _, _) -> false
  | Ebin (_, a, b) -> safe_expr st a && safe_expr st b
  | Eun (_, a) -> safe_expr st a
  | Econd (c, a, b) -> safe_expr st c && safe_expr st a && safe_expr st b
  | Ecall (("power2" | "abs" | "min" | "max" | "tofloat" | "toint"), args) ->
      List.for_all (safe_expr st) args
  | Ecall _ -> false
  | Ereduce _ -> false

(* mirror Codegen.access_plan on the walk's own layout table *)
let walk_plan st loc name subs =
  let dims, layout = array_info st loc name in
  let sp = Option.get st.space in
  let a =
    {
      aname = name;
      aloc = loc;
      arw = `Read;
      adims = dims;
      asubs = List.map (make_sub st) subs;
      aspace = sp.wdims;
      avalues = List.map snd sp.waxes;
      atrips = st.mult;
      aapprox = st.approx_depth > 0;
    }
  in
  (layout, a, classify ~news_opt:st.opts.Codegen.news_opt a layout)

let under_mask st f =
  let id = st.next_mask in
  st.next_mask <- id + 1;
  let saved_path = st.mask_path in
  let saved_all = st.act_all in
  st.act_all <- false;
  st.mask_path <- st.mask_path @ [ id ];
  f ();
  st.cse <- List.filter (fun (_, _, path) -> is_prefix path saved_path) st.cse;
  st.mask_path <- saved_path;
  st.act_all <- saved_all

let with_approx st k f =
  if k <> 1 then st.had_dynamic <- true;
  let saved_mult = st.mult and saved_depth = st.approx_depth in
  st.mult <- st.mult * k;
  st.approx_depth <- st.approx_depth + 1;
  f ();
  st.mult <- saved_mult;
  st.approx_depth <- saved_depth

let cover_extent st values =
  let n = Array.length values in
  if n = 0 then 1
  else begin
    let needed = 1 + Array.fold_left max values.(0) values in
    let candidates =
      List.sort compare (List.filter (fun e -> e >= needed) st.known_extents)
    in
    match candidates with m :: _ -> m | [] -> needed
  end

(* mirror of Codegen.enter_space, recording the ambient-activity
   expansion Pget when the ambient context is not statically full *)
let enter_space st loc set_names =
  let ambient = st.space in
  let sets = List.map (fun s -> lookup_set st loc s) set_names in
  let amb_dims, amb_axes =
    match ambient with None -> ([], []) | Some sp -> (sp.wdims, sp.waxes)
  in
  let covers = List.map (fun (_, v) -> cover_extent st v) sets in
  let dims = amb_dims @ covers in
  let axes = amb_axes @ sets in
  (match ambient with
  | Some _ when not st.act_all ->
      record st
        (Activity
           {
             trips = st.mult;
             size = List.fold_left ( * ) 1 dims;
             approx = st.approx_depth > 0;
           })
  | _ -> ());
  let masked = ref false in
  List.iter
    (fun ((_, values), cover) ->
      let full =
        Array.length values = cover
        && Array.for_all (fun i -> values.(i) = i) (Array.init cover Fun.id)
      in
      if not full then masked := true)
    (List.combine sets covers);
  let saved_env = st.env in
  List.iteri
    (fun k (elem, _) ->
      st.env <- (elem, Xelem_axis (List.length amb_axes + k)) :: st.env)
    sets;
  clear_cse st;
  let saved = (ambient, st.act_all, saved_env, st.mask_path) in
  st.space <- Some { wdims = dims; waxes = axes };
  st.act_all <-
    (match ambient with None -> true | Some _ -> st.act_all) && not !masked;
  st.mask_path <- [];
  saved

let leave_space st (ambient, act_all, saved_env, saved_mask_path) =
  clear_cse st;
  st.space <- ambient;
  st.act_all <- act_all;
  st.env <- saved_env;
  st.mask_path <- saved_mask_path

(* ---------------- expressions ---------------- *)

let rec eval_par st e =
  let sp = Option.get st.space in
  if (not st.opts.Codegen.cse) || (not (cse_worthwhile e)) || contains_rand e
  then eval_par_raw st e
  else begin
    let hit =
      List.exists
        (fun (e', dims, path) ->
          dims = sp.wdims && is_prefix path st.mask_path && expr_equal e' e)
        st.cse
    in
    if not hit then begin
      eval_par_raw st e;
      (* every cacheable parallel result is a field in this mirror *)
      st.cse <- (e, sp.wdims, st.mask_path) :: st.cse
    end
  end

and eval_par_raw st e =
  match e.e with
  | Eint _ | Efloat _ | Einf -> ()
  | Estr _ -> Loc.error e.eloc "string literal outside print"
  | Evar _ -> ()
  | Eindex (base, subs) -> gen_read st e.eloc base subs
  | Ebin (Land, a, b) when not (safe_expr st b) ->
      eval_par st a;
      under_mask st (fun () -> eval_par st b)
  | Ebin (Lor, a, b) when not (safe_expr st b) ->
      eval_par st a;
      under_mask st (fun () -> eval_par st b)
  | Ebin (_, a, b) ->
      eval_par st a;
      eval_par st b
  | Eun (_, a) -> eval_par st a
  | Econd (c, a, b) ->
      eval_par st c;
      if safe_expr st a && safe_expr st b then begin
        eval_par st a;
        eval_par st b
      end
      else begin
        under_mask st (fun () -> eval_par st a);
        under_mask st (fun () -> eval_par st b)
      end
  | Ecall (_, args) -> List.iter (eval_par st) args
  | Ereduce r -> gen_reduce st e.eloc r

and gen_read st loc base subs =
  let name =
    match base.e with
    | Evar v -> v
    | _ -> Loc.error base.eloc "only named arrays can be indexed"
  in
  let _, a, plan = walk_plan st loc name subs in
  (* General accesses evaluate their subscripts (and cache the pure
     ones); aligned and NEWS accesses touch nothing *)
  (match plan with
  | Router -> List.iter (eval_par st) subs
  | Local | News _ -> ());
  record st (Access a)

and gen_reduce st loc r =
  let saved = enter_space st loc r.rsets in
  List.iter
    (fun (pred, expr) ->
      match pred with
      | Some p ->
          eval_par st p;
          under_mask st (fun () -> eval_par st expr)
      | None -> eval_par st expr)
    r.rbranches;
  (match r.rothers with
  | Some expr -> under_mask st (fun () -> eval_par st expr)
  | None -> ());
  leave_space st saved

(* ---------------- targets ---------------- *)

and gen_target st loc lhs =
  match lhs.e with
  | Evar v -> (
      match lookup st loc v with
      | Xparlocal -> `Parlocal
      | _ -> Loc.error loc "%s is not assignable in a parallel construct" v)
  | Eindex (base, subs) -> (
      let name =
        match base.e with
        | Evar v -> v
        | _ -> Loc.error base.eloc "only named arrays can be indexed"
      in
      let _, a, plan = walk_plan st loc name subs in
      let a = { a with arw = `Write } in
      match plan with
      | Local -> `Target a
      | News _ | Router ->
          (* remote target: the address is computed up front *)
          List.iter (eval_par st) subs;
          `Target a)
  | _ -> Loc.error loc "invalid assignment target"

and target_read st target =
  match target with
  | `Parlocal -> ()
  | `Target a -> record st (Access { a with arw = `Read })

and target_write st target =
  clear_cse st;
  match target with
  | `Parlocal -> ()
  | `Target a -> record st (Access a)

(* ---------------- histogram (processor optimization) ---------------- *)

and try_histogram st loc lhs rhs =
  if not st.opts.Codegen.procopt then false
  else
    match st.space, lhs.e, rhs.e with
    | ( Some sp,
        Eindex (base, [ { e = Evar jvar; _ } ]),
        Ereduce
          {
            rop = Rsum;
            rsets = [ iset ];
            rbranches = [ (Some pred, contrib) ];
            rothers = None;
          } )
      when st.act_all && List.length sp.wdims = 1 -> (
        let jelem_ok =
          match List.assoc_opt jvar st.env with
          | Some (Xelem_axis 0) ->
              let _, values = List.nth sp.waxes 0 in
              Array.for_all
                (fun k -> values.(k) = k)
                (Array.init (Array.length values) Fun.id)
          | _ -> false
        in
        let cname = match base.e with Evar v -> Some v | _ -> None in
        match jelem_ok, cname, pred.e with
        | true, Some cname, Ebin (Eq, a, b) -> (
            let cdims, clayout = array_info st base.eloc cname in
            let key =
              match a.e, b.e with
              | _, Evar v when v = jvar -> Some a
              | Evar v, _ when v = jvar -> Some b
              | _ -> None
            in
            match key, clayout, cdims with
            | Some key, Mapping.Default, [ _extent ] ->
                let rec free_elems acc e =
                  match e.e with
                  | Evar v -> v :: acc
                  | Eindex (b, subs) ->
                      List.fold_left free_elems (free_elems acc b) subs
                  | Ebin (_, a, b) -> free_elems (free_elems acc a) b
                  | Eun (_, a) -> free_elems acc a
                  | Econd (c, a, b) ->
                      free_elems (free_elems (free_elems acc c) a) b
                  | Ecall (_, args) -> List.fold_left free_elems acc args
                  | Ereduce r ->
                      let acc =
                        List.fold_left
                          (fun acc (p, ex) ->
                            let acc =
                              match p with
                              | Some p -> free_elems acc p
                              | None -> acc
                            in
                            free_elems acc ex)
                          acc r.rbranches
                      in
                      (match r.rothers with
                      | Some ex -> free_elems acc ex
                      | None -> acc)
                  | Eint _ | Efloat _ | Estr _ | Einf -> acc
                in
                let mentions_j e = List.mem jvar (free_elems [] e) in
                if mentions_j key || mentions_j contrib then false
                else begin
                  (* the histogram runs on the I space alone *)
                  let ambient_space = st.space in
                  st.space <- None;
                  let saved = enter_space st loc [ iset ] in
                  let isize =
                    match st.space with
                    | Some sp -> List.fold_left ( * ) 1 sp.wdims
                    | None -> 1
                  in
                  eval_par st key;
                  under_mask st (fun () -> eval_par st contrib);
                  record st
                    (Hist_send
                       {
                         count = cname;
                         trips = st.mult;
                         isize;
                         approx = st.approx_depth > 0;
                       });
                  clear_cse st;
                  leave_space st saved;
                  st.space <- ambient_space;
                  true
                end
            | _ -> false)
        | _ -> false)
    | _ -> false

(* ---------------- parallel statements ---------------- *)

and stmt_par st s =
  match s.s with
  | Sempty -> ()
  | Sassign (op, lhs, rhs) -> assign_par st s.sloc op lhs rhs
  | Sexpr { e = Ecall ("swap", [ la; lb ]); eloc } ->
      let ta = gen_target st eloc la in
      let tb = gen_target st eloc lb in
      target_read st ta;
      target_read st tb;
      target_write st ta;
      target_write st tb
  | Sexpr e -> eval_par st e
  | Sblock b -> block_par st b
  | Sif (c, then_, else_) ->
      eval_par st c;
      under_mask st (fun () -> stmt_par st then_);
      (match else_ with
      | Some s -> under_mask st (fun () -> stmt_par st s)
      | None -> ())
  | Swhile (c, body) ->
      let saved_all = st.act_all in
      st.act_all <- false;
      clear_cse st;
      with_approx st dynamic_trips (fun () ->
          eval_par st c;
          stmt_par st body);
      st.act_all <- saved_all
  | Spar ps -> gen_par st s.sloc ps
  | Sseq ps -> gen_seq st s.sloc ps
  | Soneof ps -> gen_oneof st s.sloc ps
  | Ssolve _ -> Loc.error s.sloc "solve survived transformation"
  | Sfor _ ->
      Loc.error s.sloc "for loops are not supported inside parallel constructs"
  | Sreturn _ -> Loc.error s.sloc "return inside a parallel construct"
  | Sbreak | Scontinue ->
      Loc.error s.sloc "break/continue inside a parallel construct"

and assign_par st loc op lhs rhs =
  if op = Aset && try_histogram st loc lhs rhs then ()
  else begin
    let target = gen_target st loc lhs in
    match op with
    | Aset ->
        eval_par st rhs;
        target_write st target
    | _ ->
        target_read st target;
        eval_par st rhs;
        target_write st target
  end

and block_par st b =
  let saved_env = st.env in
  List.iter
    (fun d ->
      match d with
      | Dvar (_, ds) ->
          List.iter
            (fun dd ->
              if dd.ddims <> [] then
                Loc.error dd.dloc
                  "arrays may not be declared inside parallel constructs";
              clear_cse st;
              st.env <- (dd.dname, Xparlocal) :: st.env)
            ds
      | Dindexset defs ->
          List.iter
            (fun def ->
              let values = resolve_set_values st def in
              st.env <- (def.set_name, Xset (def.elem_name, values)) :: st.env)
            defs)
    b.bdecls;
  List.iter
    (fun d ->
      match d with
      | Dvar (_, ds) ->
          List.iter
            (fun dd ->
              match dd.dinit with
              | Some init ->
                  assign_par st dd.dloc Aset
                    { e = Evar dd.dname; eloc = dd.dloc }
                    init
              | None -> ())
            ds
      | Dindexset _ -> ())
    b.bdecls;
  List.iter (stmt_par st) b.bstmts;
  st.env <- saved_env

and resolve_set_values st def =
  match def.ispec with
  | Irange (lo, hi) ->
      let lo = Sema.const_eval lo and hi = Sema.const_eval hi in
      Array.init (hi - lo + 1) (fun k -> lo + k)
  | Ilist es -> Array.of_list (List.map Sema.const_eval es)
  | Ialias other ->
      let _, values = lookup_set st def.iloc other in
      values

(* ---------------- par / oneof / seq ---------------- *)

and gen_par st loc ps =
  let saved = enter_space st loc ps.psets in
  let round () =
    List.iter
      (fun (pred, body) ->
        match pred with
        | Some p ->
            eval_par st p;
            under_mask st (fun () -> stmt_par st body)
        | None -> stmt_par st body)
      ps.pbranches;
    match ps.pothers with
    | Some body -> under_mask st (fun () -> stmt_par st body)
    | None -> ()
  in
  if ps.iterate then begin
    clear_cse st;
    with_approx st dynamic_trips round
  end
  else round ();
  leave_space st saved

and gen_oneof st loc ps =
  if ps.pothers <> None then
    Loc.error loc "others is not supported on oneof statements";
  let saved = enter_space st loc ps.psets in
  clear_cse st;
  let round () =
    (* every predicate is evaluated; each body runs only when some
       element enables it, so bodies are approximate even without *)
    List.iter
      (fun (pred, _) -> match pred with Some p -> eval_par st p | None -> ())
      ps.pbranches;
    List.iter
      (fun (_, body) ->
        with_approx st 1 (fun () ->
            under_mask st (fun () -> stmt_par st body)))
      ps.pbranches
  in
  if ps.iterate then with_approx st dynamic_trips round else round ();
  leave_space st saved

and gen_seq st loc ps =
  if ps.pothers <> None then
    Loc.error loc "others is not meaningful on seq statements";
  let sets = List.map (fun s -> lookup_set st loc s) ps.psets in
  let fe_context = st.space = None in
  clear_cse st;
  let body_once () =
    (* bind every element to a register (representative: first value),
       then walk the nest body once; execution count is the product of
       the set sizes regardless of how Codegen unrolls *)
    let saved_env = st.env in
    List.iter
      (fun (elem, values) ->
        let rep = if Array.length values > 0 then values.(0) else 0 in
        st.env <- (elem, Xelem_reg rep) :: st.env)
      sets;
    let n = List.fold_left (fun acc (_, v) -> acc * Array.length v) 1 sets in
    let saved_mult = st.mult in
    st.mult <- st.mult * max 1 n;
    clear_cse st;
    List.iter
      (fun (pred, body) ->
        if fe_context then begin
          (match pred with Some p -> eval_fe st p | None -> ());
          match pred with
          | Some _ ->
              (* front-end skip: the body runs only where the guard
                 holds for that combination *)
              with_approx st 1 (fun () -> stmt_fe st body)
          | None -> stmt_fe st body
        end
        else
          match pred with
          | Some p ->
              eval_par st p;
              under_mask st (fun () -> stmt_par st body)
          | None -> stmt_par st body)
      ps.pbranches;
    st.mult <- saved_mult;
    st.env <- saved_env
  in
  if ps.iterate then with_approx st dynamic_trips body_once else body_once ()

(* ---------------- front-end ---------------- *)

and eval_fe st e =
  match e.e with
  | Eint _ | Efloat _ | Einf -> ()
  | Estr _ -> Loc.error e.eloc "string literal outside print"
  | Evar _ -> ()
  | Eindex (base, subs) ->
      let name =
        match base.e with
        | Evar v -> v
        | _ -> Loc.error base.eloc "only named arrays can be indexed"
      in
      List.iter (eval_fe st) subs;
      record st (Fe_access { fename = name; ferw = `Read; fetrips = st.mult })
  | Ebin ((Land | Lor), a, b) ->
      eval_fe st a;
      (* short-circuit: b may not run *)
      with_approx st 1 (fun () -> eval_fe st b)
  | Ebin (_, a, b) ->
      eval_fe st a;
      eval_fe st b
  | Eun (_, a) -> eval_fe st a
  | Econd (c, a, b) ->
      eval_fe st c;
      with_approx st 1 (fun () -> eval_fe st a);
      with_approx st 1 (fun () -> eval_fe st b)
  | Ecall (_, args) -> List.iter (eval_fe st) args
  | Ereduce r -> gen_reduce st e.eloc r

and assign_fe_value st loc lhs =
  clear_cse st;
  match lhs.e with
  | Evar _ -> ()
  | Eindex (base, subs) ->
      let name =
        match base.e with
        | Evar v -> v
        | _ -> Loc.error base.eloc "only named arrays can be indexed"
      in
      List.iter (eval_fe st) subs;
      record st (Fe_access { fename = name; ferw = `Write; fetrips = st.mult })
  | _ -> Loc.error loc "invalid assignment target"

and assign_fe st loc op lhs rhs =
  (match op with
  | Aset -> eval_fe st rhs
  | _ ->
      eval_fe st lhs;
      eval_fe st rhs);
  assign_fe_value st loc lhs

(* static trip count of a canonical counted for-loop *)
and for_trips st init cond step body =
  let var_and_const = function
    | Some { s = Sassign (Aset, { e = Evar v; _ }, rhs); _ } ->
        Option.map (fun c -> (v, c)) (const_of rhs)
    | _ -> None
  in
  let rec assigns_var v s =
    match s.s with
    | Sassign (_, { e = Evar v'; _ }, _) -> v = v'
    | Sblock b -> List.exists (assigns_var v) b.bstmts
    | Sif (_, t, e) ->
        assigns_var v t
        || (match e with Some e -> assigns_var v e | None -> false)
    | Swhile (_, b) -> assigns_var v b
    | Sfor (i, _, stp, b) ->
        (match i with Some i -> assigns_var v i | None -> false)
        || (match stp with Some s -> assigns_var v s | None -> false)
        || assigns_var v b
    | Sbreak | Scontinue | Sreturn _ -> true (* escapes break the count *)
    | _ -> false
  in
  ignore st;
  match var_and_const init, cond with
  | Some (v, c0), Some { e = Ebin (cmp, { e = Evar v'; _ }, bound); _ }
    when v = v' -> (
      match const_of bound, step with
      | ( Some c1,
          Some
            {
              s =
                Sassign
                  ( Aset,
                    { e = Evar v''; _ },
                    {
                      e =
                        Ebin
                          ( (Add | Sub) as sop,
                            { e = Evar v'''; _ },
                            stepc );
                      _;
                    } );
              _;
            } )
        when v = v'' && v = v''' -> (
          match const_of stepc with
          | Some sc when sc > 0 && not (assigns_var v body) ->
              let sc = if sop = Sub then -sc else sc in
              let count =
                match cmp, compare sc 0 with
                | Lt, 1 -> Some (max 0 ((c1 - c0 + sc - 1) / sc))
                | Le, 1 -> Some (max 0 ((c1 - c0 + sc) / sc))
                | Gt, -1 -> Some (max 0 ((c0 - c1 - sc - 1) / -sc))
                | Ge, -1 -> Some (max 0 ((c0 - c1 - sc) / -sc))
                | _ -> None
              in
              count
          | _ -> None)
      | _ -> None)
  | _ -> None

and stmt_fe st s =
  match s.s with
  | Sempty -> ()
  | Sassign (op, lhs, rhs) -> assign_fe st s.sloc op lhs rhs
  | Sexpr { e = Ecall ("print", args); _ } ->
      List.iter
        (fun a -> match a.e with Estr _ -> () | _ -> eval_fe st a)
        args
  | Sexpr { e = Ecall ("swap", [ la; lb ]); eloc } ->
      eval_fe st la;
      eval_fe st lb;
      assign_fe_value st eloc la;
      assign_fe_value st eloc lb
  | Sexpr e -> eval_fe st e
  | Sif (c, then_, else_) -> (
      eval_fe st c;
      (* a constant condition selects its branch statically *)
      match const_of c with
      | Some v ->
          if v <> 0 then stmt_fe st then_
          else ( match else_ with Some e -> stmt_fe st e | None -> ())
      | None ->
          with_approx st 1 (fun () -> stmt_fe st then_);
          (match else_ with
          | Some e -> with_approx st 1 (fun () -> stmt_fe st e)
          | None -> ()))
  | Swhile (c, body) ->
      with_approx st dynamic_trips (fun () ->
          eval_fe st c;
          stmt_fe st body)
  | Sfor (init, cond, step, body) -> (
      (match init with Some i -> stmt_fe st i | None -> ());
      match for_trips st init cond step body with
      | Some trips ->
          (* cond runs trips+1 times, body and step trips times; the
             canonical form has an event-free condition, so walking it
             at the body multiplier loses nothing *)
          let saved = st.mult in
          st.mult <- st.mult * trips;
          if trips > 0 then begin
            (match cond with Some c -> eval_fe st c | None -> ());
            stmt_fe st body;
            match step with Some stp -> stmt_fe st stp | None -> ()
          end;
          st.mult <- saved
      | None ->
          with_approx st dynamic_trips (fun () ->
              (match cond with Some c -> eval_fe st c | None -> ());
              stmt_fe st body;
              match step with Some stp -> stmt_fe st stp | None -> ()))
  | Sblock b -> block_fe st b
  | Sreturn _ -> raise Returned
  | Sbreak | Scontinue ->
      (* only reachable inside dynamic loops, which are approximate
         already *)
      ()
  | Spar ps -> gen_par st s.sloc ps
  | Sseq ps -> gen_seq st s.sloc ps
  | Soneof ps -> gen_oneof st s.sloc ps
  | Ssolve _ -> Loc.error s.sloc "solve survived transformation"

and block_fe st b =
  let saved_env = st.env in
  List.iter (declare_fe st) b.bdecls;
  List.iter (stmt_fe st) b.bstmts;
  st.env <- saved_env

and declare_fe st d =
  match d with
  | Dvar (ty, ds) ->
      ignore ty;
      List.iter
        (fun dd ->
          if dd.ddims = [] then begin
            st.env <- (dd.dname, Xscalar) :: st.env;
            match dd.dinit with
            | Some init ->
                assign_fe st dd.dloc Aset
                  { e = Evar dd.dname; eloc = dd.dloc }
                  init
            | None -> ()
          end
          else begin
            let dims = List.map Sema.const_eval dd.ddims in
            st.known_extents <- dims @ st.known_extents;
            let layout =
              if st.opts.Codegen.use_mappings then Mapping.find st.layouts dd.dname
              else Mapping.Default
            in
            st.env <- (dd.dname, Xarray { xdims = dims; xlayout = layout }) :: st.env
          end)
        ds
  | Dindexset defs ->
      List.iter
        (fun def ->
          let values = resolve_set_values st def in
          st.env <- (def.set_name, Xset (def.elem_name, values)) :: st.env)
        defs

(* ---------------- entry point ---------------- *)

(* [analyze prog] expects a transformed, constant-folded program (the
   exact input Codegen.compile takes).  [layouts] defaults to the
   program's own map sections, like the lowering seam. *)
let analyze ?(options = Codegen.default_options) ?layouts prog : summary =
  let layouts =
    match layouts with
    | Some t -> List.map (fun (n, l) -> (n, Mapping.normalize l)) t
    | None -> if options.Codegen.use_mappings then Mapping.of_program prog else []
  in
  let st =
    {
      opts = options;
      layouts;
      env = [];
      space = None;
      act_all = true;
      known_extents = [];
      cse = [];
      mask_path = [];
      next_mask = 0;
      mult = 1;
      approx_depth = 0;
      had_dynamic = false;
      events = [];
    }
  in
  let main = ref None in
  List.iter
    (fun top ->
      match top with
      | Tdecl d -> declare_fe st d
      | Tmap _ -> ()
      | Tfunc f ->
          if f.fname = "main" then main := Some f
          else Loc.error f.floc "function %s survived inlining" f.fname)
    prog;
  (match !main with
  | Some f -> ( try block_fe st f.fbody with Returned -> ())
  | None -> Loc.error Loc.dummy "program has no main function");
  let arrays =
    List.rev
      (List.filter_map
         (function name, Xarray x -> Some (name, x.xdims) | _ -> None)
         st.env)
  in
  let sets =
    List.rev
      (List.filter_map
         (function name, Xset (_, values) -> Some (name, values) | _ -> None)
         st.env)
  in
  {
    events = List.rev st.events;
    arrays;
    sets;
    options;
    base_layouts = layouts;
    had_dynamic = st.had_dynamic;
  }

(* parse -> check -> transform -> fold -> analyze, one call for tools *)
let analyze_source ?options ?layouts src =
  let prog = Parser.parse_program src in
  ignore (Sema.check prog);
  let layouts =
    (* resolve the default against the raw program: map sections are
       dropped neither by Transform nor Optimize, but being explicit
       keeps the seam identical to Compile.lower *)
    match layouts with
    | Some t -> Some t
    | None -> None
  in
  let prog = Transform.apply prog in
  let prog = Optimize.fold_program prog in
  analyze ?options ?layouts prog

(* ---------------- pretty ---------------- *)

let pat_to_string = function
  | Local -> "local"
  | News (axis, d) -> Printf.sprintf "news(axis %d, %+d)" axis d
  | Router -> "router"
