(** Compiler driver: source text to results on the simulated CM.

    Pipeline: {!Parser} -> {!Sema} -> {!Transform} (inlining, solve
    lowering) -> {!Codegen} -> {!Cm.Machine}.  Results are read back in
    logical order regardless of the data mapping in effect. *)

type t = {
  compiled : Codegen.compiled;
  machine : Cm.Machine.t;
}

(** Parse and type-check only (the first re-enterable stage; the result
    may be lowered many times under different option sets). *)
val parse_source : string -> Ast.program

(** Transform, fold and lower an already-checked program. *)
val lower : ?options:Codegen.options -> Ast.program -> Codegen.compiled

(** Parse, check, transform and lower a program without running it.
    Equivalent to [lower ?options (parse_source src)]. *)
val compile_source : ?options:Codegen.options -> string -> Codegen.compiled

(** Execute an already-lowered program on a fresh machine.  [engine]
    selects the machine's execution engine (default [`Fast]); both
    engines are observably identical. *)
val run_compiled :
  ?cost:Cm.Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:Cm.Machine.engine ->
  Codegen.compiled ->
  t

(** [run_source src] compiles and executes a program.
    @raise Loc.Error on front-end errors, [Cm.Machine.Error] on dynamic
    faults. *)
val run_source :
  ?options:Codegen.options ->
  ?cost:Cm.Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:Cm.Machine.engine ->
  string ->
  t

(** Final contents of a global array, flattened row-major in logical
    element order (layouts are inverted). *)
val int_array : t -> string -> int array

val float_array : t -> string -> float array

(** Final value of a global scalar. *)
val scalar : t -> string -> Cm.Paris.scalar

(** Lines produced by [print]. *)
val output : t -> string list

(** Simulated elapsed seconds. *)
val elapsed_seconds : t -> float

val meter : t -> Cm.Cost.meter
