(** Compiler driver: source text to results on the simulated CM.

    Pipeline: {!Parser} -> {!Sema} -> {!Transform} (inlining, solve
    lowering) -> {!Codegen} -> {!Cm.Machine}.  Results are read back in
    logical order regardless of the data mapping in effect.

    Every stage takes an optional telemetry scope [obs] (default
    {!Obs.null}).  Compilation stages emit [compile.parse],
    [compile.sema], [compile.transform], [compile.fold] and
    [compile.codegen] spans (plus the IR optimizer's ["iropt."] events);
    execution stages hand the scope to the machine.  Telemetry never
    changes compilation or program results. *)

type t = {
  compiled : Codegen.compiled;
  machine : Cm.Machine.t;
}

(** Parse and type-check only (the first re-enterable stage; the result
    may be lowered many times under different option sets). *)
val parse_source : ?obs:Obs.t -> string -> Ast.program

(** Transform, fold and lower an already-checked program.  [layouts]
    overrides the program's own map sections with an explicit layout
    table (see {!Codegen.compile}) — the hook [ucc tune] and tuned
    batch jobs lower through. *)
val lower :
  ?layouts:Mapping.table ->
  ?options:Codegen.options ->
  ?obs:Obs.t ->
  Ast.program ->
  Codegen.compiled

(** Parse, check, transform and lower a program without running it.
    Equivalent to [lower ?layouts ?options (parse_source src)]. *)
val compile_source :
  ?layouts:Mapping.table ->
  ?options:Codegen.options ->
  ?obs:Obs.t ->
  string ->
  Codegen.compiled

(** Allocate a fresh machine for an already-lowered program without
    running anything: the entry point for sliced execution ({!step}).
    [faults] installs a concrete fault plan (see {!Cm.Fault}). *)
val start_compiled :
  ?cost:Cm.Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:Cm.Machine.engine ->
  ?faults:Cm.Fault.plan ->
  ?obs:Obs.t ->
  Codegen.compiled ->
  t

(** Execute at most [fuel_slice] instructions; [`More] means the run can
    be continued (or checkpointed and resumed later).
    @raise Cm.Machine.Error / [Cm.Machine.Fault] like a full run. *)
val step : t -> fuel_slice:int -> [ `Done | `More ]

val finished : t -> bool

(** Serialize the machine state (versioned; see {!Cm.Machine.checkpoint}). *)
val checkpoint : t -> string

(** Rebuild a suspended run from a {!checkpoint} against the same
    lowered program.  @raise Cm.Machine.Error on version or program
    mismatch. *)
val restore_compiled :
  ?engine:Cm.Machine.engine ->
  ?faults:Cm.Fault.plan ->
  ?obs:Obs.t ->
  Codegen.compiled ->
  string ->
  t

(** Execute an already-lowered program on a fresh machine.  [engine]
    selects the machine's execution engine (default [`Fast]); both
    engines are observably identical.  [faults] injects a fault plan. *)
val run_compiled :
  ?cost:Cm.Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:Cm.Machine.engine ->
  ?faults:Cm.Fault.plan ->
  ?obs:Obs.t ->
  Codegen.compiled ->
  t

(** [run_source src] compiles and executes a program.
    @raise Loc.Error on front-end errors, [Cm.Machine.Error] on dynamic
    faults, [Cm.Machine.Fault] on injected transient faults. *)
val run_source :
  ?options:Codegen.options ->
  ?cost:Cm.Cost.params ->
  ?seed:int ->
  ?fuel:int ->
  ?engine:Cm.Machine.engine ->
  ?faults:Cm.Fault.plan ->
  ?obs:Obs.t ->
  string ->
  t

(** Metadata (element type, dims, layout) of a global array.
    @raise Failure on an unknown name; the message lists the known
    global arrays. *)
val meta : t -> string -> Codegen.array_meta

(** Final contents of a global array, flattened row-major in logical
    element order (layouts are inverted).
    @raise Failure on an unknown name; the message lists the known
    global arrays. *)
val int_array : t -> string -> int array

val float_array : t -> string -> float array

(** Final value of a global scalar.
    @raise Failure on an unknown name; the message lists the known
    global scalars. *)
val scalar : t -> string -> Cm.Paris.scalar

(** Lines produced by [print]. *)
val output : t -> string list

(** Simulated elapsed seconds. *)
val elapsed_seconds : t -> float

val meter : t -> Cm.Cost.meter
