(** Layout optimizer: the search behind [ucc tune].

    Enumerates candidate layouts per array (default, permutes derived
    from observed access offsets, fold, replication for high-fan-in
    gathers) and scores each candidate {b statically}: the
    communication events recorded by {!Commpat} are re-classified under
    the candidate and charged to a fresh {!Cm.Cost} meter the way the
    machine would charge the real instructions.  Nothing is lowered or
    run.

    The objective is separable (an event's cost depends only on its own
    array's layout), so the table argmin decomposes per array.  Default
    is always a candidate: the chosen table's predicted cost is never
    worse than the default's. *)

type choice = {
  cname : string;
  cdims : int list;
  clayout : Mapping.layout;
  crationale : string;
  cdefault_ns : float;  (** predicted comm ns of this array's events *)
  cchosen_ns : float;
}

type result = {
  table : Mapping.table;  (** canonical: non-default entries only *)
  choices : choice list;  (** every global array, declaration order *)
  summary : Commpat.summary;
  chosen_prediction : Commpat.prediction;
  default_prediction : Commpat.prediction;
  chosen_ns : float;  (** whole-program predicted communication ns *)
  default_ns : float;
}

(** Predicted communication cost (simulated ns) of [events] under a
    layout table — the scoring primitive, exposed for tests. *)
val score :
  ?params:Cm.Cost.params ->
  Commpat.summary ->
  Mapping.table ->
  Commpat.event list ->
  float

(** Search over an analysis summary (must have been produced under the
    all-default table). *)
val search_summary : ?params:Cm.Cost.params -> Commpat.summary -> result

(** Analyze a transformed, folded program under the all-default table
    (existing map sections are ignored) and search. *)
val search :
  ?options:Codegen.options -> ?params:Cm.Cost.params -> Ast.program -> result

(** Parse, check, transform, fold, then {!search}. *)
val search_source :
  ?options:Codegen.options -> ?params:Cm.Cost.params -> string -> result
