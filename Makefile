# Development entry points.  `make ci` is the gate every change must
# pass: full build, engine-equivalence corpus check, full test suite,
# and a CLI sanity check; it stops loudly at the first failing step.

.PHONY: all build test ci bench bench-compare batch clean

all: build

build:
	dune build

test:
	dune runtest

ci:
	dune build
	dune exec test/test_engine.exe -- test corpus
	dune runtest
	dune exec bin/ucc.exe -- examples

bench:
	dune exec bench/main.exe

# diff two bench --json snapshots: asserts the simulated rows are
# identical and prints wall-clock speedups for the bechamel rows
bench-compare:
	dune exec bench/compare.exe -- BENCH_PR1.json BENCH_PR2.json

# the full corpus through the batch service, parallel, with the on-disk cache
batch:
	dune exec bin/ucc.exe -- batch --jobs 4 --stats

clean:
	dune clean
	rm -rf _ucd_cache
