# Development entry points.  `make ci` is the gate every change must
# pass: full build, full test suite, and a CLI sanity check; it stops
# loudly at the first failing step.

.PHONY: all build test ci bench batch clean

all: build

build:
	dune build

test:
	dune runtest

ci:
	dune build
	dune runtest
	dune exec bin/ucc.exe -- examples

bench:
	dune exec bench/main.exe

# the full corpus through the batch service, parallel, with the on-disk cache
batch:
	dune exec bin/ucc.exe -- batch --jobs 4 --stats

clean:
	dune clean
	rm -rf _ucd_cache
