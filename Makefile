# Development entry points.  `make ci` is the gate every change must
# pass: full build, engine-equivalence corpus check, full test suite,
# a CLI sanity check, and the whole corpus run under a canned fault
# plan with retries; it stops loudly at the first failing step.

.PHONY: all build test ci ci-faultgate ci-iropt ci-obs ci-serve ci-sharded ci-native ci-crash ci-tune bench bench-compare batch clean

all: build

build:
	dune build

test:
	dune runtest

ci: ci-faultgate ci-iropt ci-obs ci-serve ci-sharded ci-native ci-crash ci-tune
	dune build
	dune exec test/test_engine.exe -- test corpus
	dune runtest
	dune exec bin/ucc.exe -- examples

# IR-optimizer gate: the whole UC/C* corpus with the optimizer on vs
# off must print the same output, leave the same named arrays/scalars
# and never increase simulated ns; the recorded benchmark snapshot must
# be equal-or-faster per row than the previous PR's.
ci-iropt: build
	dune exec test/test_iropt.exe -- test corpus
	dune exec bench/compare.exe -- --allow-faster BENCH_PR2.json BENCH_PR4.json

# Telemetry gate: the whole corpus, on both engines, must produce a
# bit-identical observable snapshot with tracing on and off, and every
# trace line must round-trip through Ucd.Jsonu byte for byte.
ci-obs: build
	dune exec test/test_obs.exe -- test corpus

# Recovery gate: the whole corpus under a transient-fault plan with
# retries enabled.  Exit 0 (every fault retried away) and exit 2 (some
# jobs quarantined as "faulted") are both acceptable; what must never
# appear is a failed or timed-out row, a crash, or a hang (the timeout
# bounds the gate).  Transients only: bit flips can corrupt a divisor
# or address and turn into a legitimate Machine.Error = failed row.
ci-faultgate: build
	timeout 300 dune exec bin/ucc.exe -- batch --cache-dir none \
	  --faults "seed=2026;horizon=1000;router=1;news=1;chip=1" \
	  --retries 3 --fuel-slice 50000 --report _ci_faultgate.jsonl \
	  || test $$? -eq 2
	@! grep -q '"status":"failed"' _ci_faultgate.jsonl
	@! grep -q '"status":"timeout"' _ci_faultgate.jsonl
	@grep -q '"summary":true' _ci_faultgate.jsonl
	@echo "fault gate: every job ended Done or Faulted"
	@rm -f _ci_faultgate.jsonl

# Sharded-engine gate: the whole corpus bit-identical between
# --engine fast and --engine sharded at 1 and 4 shards, traced and
# untraced (rows compared minus digest/engine labels and wall-clock
# provenance; output, simulated seconds and all deterministic metrics
# must agree byte for byte).
ci-sharded: build
	timeout 300 bash test/ci_sharded.sh

# Native-codegen gate: the whole corpus bit-identical between
# --engine fast and --engine native, once on a cold .cmxs cache (every
# program compiled through ocamlopt + Dynlink) and once warm from a
# fresh process (run rows miss, compiled code 100% hit).  On a host
# without a native toolchain the sweep must degrade to the fast
# kernels with a one-line warning and stay green.
ci-native: build
	timeout 300 bash test/ci_native.sh

# Layout-tuner gate: `ucc tune` over the whole corpus (every emitted
# map section re-parses and --apply is idempotent, predicted chosen
# cost never above predicted default), then a tuned batch sweep that
# must be observably bit-identical to the untuned one with every tuned
# row stamped.
ci-tune: build
	timeout 300 bash test/ci_tune.sh

# Serve gate: boot the daemon, push the whole corpus from two
# concurrent clients, require their rows bit-identical to `ucc batch`,
# shed load through a typed `overloaded` rejection, and drain cleanly;
# the timeout bounds the gate, so a hang is a failure, not a wait.
ci-serve: build
	timeout 300 bash test/ci_serve.sh

# Crash gate: SIGKILL the daemon mid-corpus, restart it over the same
# cache dir, and require the write-ahead journal to recover every
# accepted job — zero lost, zero duplicated, report rows byte-identical
# to an uninterrupted `ucc batch` run.
ci-crash: build
	timeout 300 bash test/ci_crash.sh

bench:
	dune exec bench/main.exe

# diff two bench --json snapshots: asserts the simulated rows are
# identical and prints wall-clock speedups for the bechamel rows
bench-compare:
	dune exec bench/compare.exe -- BENCH_PR1.json BENCH_PR2.json

# the full corpus through the batch service, parallel, with the on-disk cache
batch:
	dune exec bin/ucc.exe -- batch --jobs 4 --stats

clean:
	dune clean
	rm -rf _ucd_cache
